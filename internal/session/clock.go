// Package session implements the BGP peering session: the RFC 1771 finite
// state machine, hold and keepalive timers, and outbound update batching on
// the MinRouteAdvertisementInterval timer.
//
// Two implementation behaviors the paper identifies as pathology sources are
// first-class configuration here:
//
//   - Stateless Adj-RIB-Out ("stateless BGP"): the router keeps no record of
//     what it advertised to each peer, so every topology change emits
//     withdrawals to all peers — including peers that never received an
//     announcement. Receivers observe the paper's WWDup pathology.
//   - Unjittered 30-second interval timer: outbound changes are batched on a
//     fixed-period timer; an A1,A2,A1 sequence inside one interval flushes as
//     a duplicate announcement (AADup), and W,A,W flushes as a duplicate
//     withdrawal. The same fixed timer is the coupling mechanism for
//     Floyd–Jacobson self-synchronization.
//
// The session core is a synchronous, single-threaded state machine driven by
// injected transport and timer events, so it runs unchanged under the
// discrete-event simulator and, via Runner, over real TCP connections.
package session

import (
	"sync"
	"time"

	"instability/internal/events"
)

// Canceler stops a pending timer.
type Canceler interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Clock abstracts time for the session FSM: virtual time under the
// simulator, wall-clock time under Runner.
type Clock interface {
	Now() time.Time
	// After schedules fn after d. Implementations must deliver fn on the
	// same serialization domain as the rest of the FSM's inputs.
	After(d time.Duration, fn func()) Canceler
	// Jitter returns d perturbed by ±frac (0 means unjittered).
	Jitter(d time.Duration, frac float64) time.Duration
}

// SimClock adapts an events.Sim to the Clock interface. The name argument
// selects the RNG stream used for jitter so distinct sessions draw
// independent jitter.
func SimClock(sim *events.Sim, name string) Clock {
	return simClock{sim: sim, name: name}
}

type simClock struct {
	sim  *events.Sim
	name string
}

func (c simClock) Now() time.Time { return c.sim.Now() }

func (c simClock) After(d time.Duration, fn func()) Canceler {
	return c.sim.Schedule(d, fn)
}

func (c simClock) Jitter(d time.Duration, frac float64) time.Duration {
	return c.sim.Jitter(c.name+"/jitter", d, frac)
}

// RealClock returns a wall-clock Clock whose callbacks are serialized through
// mu, so Runner can share one lock between timer callbacks and reader
// goroutine events.
func RealClock(mu *sync.Mutex, jitterSeed func() float64) Clock {
	return &realClock{mu: mu, rand: jitterSeed}
}

type realClock struct {
	mu   *sync.Mutex
	rand func() float64
}

func (c *realClock) Now() time.Time { return time.Now() }

func (c *realClock) After(d time.Duration, fn func()) Canceler {
	t := time.AfterFunc(d, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})
	return realCancel{t}
}

func (c *realClock) Jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	u := 0.5
	if c.rand != nil {
		u = c.rand()
	}
	lo := float64(d) * (1 - frac)
	hi := float64(d) * (1 + frac)
	return time.Duration(lo + u*(hi-lo))
}

type realCancel struct{ t *time.Timer }

func (r realCancel) Stop() bool { return r.t.Stop() }
