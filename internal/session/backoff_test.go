package session

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"instability/internal/events"
	"instability/internal/faults"
)

// idealBackoff is the uncapped-then-capped delay the schedule centers on at
// attempt n (0-based).
func idealBackoff(b *Backoff, n int) time.Duration {
	d := float64(b.Base)
	for i := 0; i < n; i++ {
		d *= b.Factor
	}
	return time.Duration(math.Min(d, float64(b.Max)))
}

func assertDelayInBounds(t *testing.T, b *Backoff, n int, d time.Duration) {
	t.Helper()
	ideal := idealBackoff(b, n)
	lo := time.Duration(float64(ideal) * (1 - b.Jitter))
	hi := time.Duration(float64(ideal) * (1 + b.Jitter))
	if d < lo || d > hi {
		t.Fatalf("attempt %d: delay %v outside [%v, %v]", n, d, lo, hi)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := &Backoff{
		Base:   100 * time.Millisecond,
		Max:    2 * time.Second,
		Factor: 2,
		Jitter: 0.25,
		Rand:   rng.Float64,
	}
	for n := 0; n < 12; n++ {
		assertDelayInBounds(t, b, n, b.Next())
	}
	if b.Attempts() != 12 {
		t.Fatalf("attempts = %d, want 12", b.Attempts())
	}
	// Reset-on-success restores the fast first step.
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("attempts after reset = %d", b.Attempts())
	}
	d := b.Next()
	assertDelayInBounds(t, b, 0, d)
	if d >= 200*time.Millisecond {
		t.Fatalf("post-reset delay %v did not return to the first step", d)
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	d := b.Next()
	if d < 400*time.Millisecond || d > 600*time.Millisecond {
		t.Fatalf("zero-value first delay %v outside 500ms ± 20%%", d)
	}
	// The cap binds eventually and jitter stays relative to the cap.
	for i := 0; i < 20; i++ {
		d = b.Next()
	}
	if d < 48*time.Second || d > 72*time.Second {
		t.Fatalf("capped delay %v outside 1m ± 20%%", d)
	}
}

// TestChaosPipeBackoffWithinBounds runs a session over a chaotic link —
// random drops, duplicates, delays, and full transport resets — with the
// environment restoring the link after a Backoff-chosen delay on every
// reconnect attempt. It asserts the chaos actually fired, every sleep the
// backoff chose was within its jitter bounds, and the session is established
// again once the chaos stops.
func TestChaosPipeBackoffWithinBounds(t *testing.T) {
	sim := events.New(11)
	pipe := NewPipe(sim, 5*time.Millisecond)
	pipe.Verify = true
	chaos := faults.NewTransport(99)
	chaos.ResetProb = 0.05
	chaos.DropProb = 0.01
	chaos.DupProb = 0.03
	chaos.MaxExtraDelay = 2 * time.Millisecond
	pipe.Chaos = chaos

	rng := rand.New(rand.NewSource(7))
	bo := &Backoff{
		Base:   2 * time.Second,
		Max:    30 * time.Second,
		Factor: 2,
		Jitter: 0.25,
		Rand:   rng.Float64,
	}
	type sleep struct {
		attempt int
		d       time.Duration
	}
	var sleeps []sleep
	restorePending := false
	var a, b *Peer
	a = New(cfg(690, 1), SimClock(sim, "a"), Callbacks{
		Send: pipe.SendA,
		Connect: func() {
			// The dialer side of a reconnect: tear down any stale link,
			// sleep a backoff-chosen delay, then bring the transport up.
			// Scheduled rather than run inline because Down/Up re-enter
			// both FSMs and Connect is called from inside a transition.
			if restorePending {
				return
			}
			restorePending = true
			n := bo.Attempts()
			d := bo.Next()
			sleeps = append(sleeps, sleep{attempt: n, d: d})
			sim.Schedule(0, pipe.Down)
			sim.Schedule(d, func() {
				restorePending = false
				pipe.Up()
			})
		},
	})
	b = New(cfg(701, 2), SimClock(sim, "b"), Callbacks{Send: pipe.SendB})
	pipe.Bind(a, b)
	if !Establish(sim, pipe, a, b, time.Minute) {
		t.Fatal("no establishment")
	}

	// Two hours of chaotic operation; reset the backoff whenever the session
	// is up, as the collector dial loop does on success.
	for i := 0; i < 720; i++ {
		sim.RunFor(10 * time.Second)
		if a.State() == Established {
			bo.Reset()
		}
	}
	if chaos.Resets < 3 {
		t.Fatalf("chaos injected only %d resets in two hours", chaos.Resets)
	}
	if len(sleeps) < 3 {
		t.Fatalf("backoff consulted only %d times for %d resets", len(sleeps), chaos.Resets)
	}
	for _, s := range sleeps {
		assertDelayInBounds(t, bo, s.attempt, s.d)
	}

	// Calm the link; the session must come back on its own.
	pipe.Chaos = nil
	if !pipe.IsUp() && !restorePending {
		sim.Schedule(0, pipe.Up)
	}
	sim.RunFor(10 * time.Minute)
	if a.State() != Established || b.State() != Established {
		t.Fatalf("session did not recover after chaos: a=%v b=%v", a.State(), b.State())
	}
	if a.Stats().EstablishedCount < 2 {
		t.Fatalf("session never re-established through chaos: count %d", a.Stats().EstablishedCount)
	}
}
