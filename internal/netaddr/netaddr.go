// Package netaddr provides compact IPv4 address and prefix value types used
// throughout the routing-instability library.
//
// The simulator and classifier handle tens of millions of prefix operations
// per run, so prefixes are represented as a packed (uint32 address, mask
// length) pair rather than byte slices. All values are comparable and usable
// as map keys.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses a dotted-quad IPv4 address such as "192.42.113.7".
func ParseAddr(s string) (Addr, error) {
	var a uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netaddr: invalid address %q: expected 4 octets", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		v, err := strconv.ParseUint(part, 10, 16)
		if err != nil || v > 255 || len(part) == 0 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("netaddr: invalid address %q: bad octet %q", s, part)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// MustParseAddr is like ParseAddr but panics on error. Intended for tests and
// package-level constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad form of a.
func (a Addr) String() string {
	var b [15]byte
	return string(a.appendTo(b[:0]))
}

func (a Addr) appendTo(b []byte) []byte {
	for i := 3; i >= 0; i-- {
		b = strconv.AppendUint(b, uint64(a>>(8*i))&0xff, 10)
		if i > 0 {
			b = append(b, '.')
		}
	}
	return b
}

// Octets returns the four octets of a in network order.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// AddrFromOctets assembles an address from four network-order octets.
func AddrFromOctets(o [4]byte) Addr {
	return Addr(uint32(o[0])<<24 | uint32(o[1])<<16 | uint32(o[2])<<8 | uint32(o[3]))
}

// Prefix is an IPv4 CIDR prefix. The address bits below the mask length are
// always zero for a valid Prefix, which makes the type safely comparable:
// two prefixes are equal iff they denote the same address block.
type Prefix struct {
	addr Addr
	bits uint8
}

// ErrInvalidPrefix is returned for malformed prefix inputs.
var ErrInvalidPrefix = errors.New("netaddr: invalid prefix")

// PrefixFrom constructs a prefix from an address and mask length, zeroing any
// host bits. bits must be in [0,32].
func PrefixFrom(a Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: mask length %d", ErrInvalidPrefix, bits)
	}
	return Prefix{addr: a & Addr(maskOf(bits)), bits: uint8(bits)}, nil
}

// MustPrefix is like PrefixFrom but panics on error.
func MustPrefix(a Addr, bits int) Prefix {
	p, err := PrefixFrom(a, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation such as "192.42.113.0/24". As in the
// paper's notation, "192.42.113/24" (trailing zero octets omitted) is also
// accepted.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrInvalidPrefix, s)
	}
	addrPart, bitsPart := s[:slash], s[slash+1:]
	bits, err := strconv.Atoi(bitsPart)
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: %q bad mask length", ErrInvalidPrefix, s)
	}
	// Allow abbreviated forms with fewer than four octets.
	if n := strings.Count(addrPart, "."); n < 3 {
		addrPart += strings.Repeat(".0", 3-n)
	}
	a, err := ParseAddr(addrPart)
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %v", ErrInvalidPrefix, err)
	}
	if a&Addr(^maskOf(bits)) != 0 {
		return Prefix{}, fmt.Errorf("%w: %q has host bits set", ErrInvalidPrefix, s)
	}
	return Prefix{addr: a, bits: uint8(bits)}, nil
}

// MustParsePrefix is like ParsePrefix but panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the network address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// IsValid reports whether p is a well-formed prefix (the zero Prefix is the
// valid 0.0.0.0/0 default route; there is no invalid state representable).
func (p Prefix) IsValid() bool { return p.bits <= 32 && p.addr&Addr(^maskOf(int(p.bits))) == 0 }

// String returns CIDR notation for p.
func (p Prefix) String() string {
	var b [18]byte
	out := p.addr.appendTo(b[:0])
	out = append(out, '/')
	out = strconv.AppendUint(out, uint64(p.bits), 10)
	return string(out)
}

// Contains reports whether a is inside the block denoted by p.
func (p Prefix) Contains(a Addr) bool {
	return a&Addr(maskOf(int(p.bits))) == p.addr
}

// ContainsPrefix reports whether q is a (non-strict) sub-block of p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// Supernet returns the prefix one bit shorter that contains p. Supernet of
// the default route returns the default route itself.
func (p Prefix) Supernet() Prefix {
	if p.bits == 0 {
		return p
	}
	b := int(p.bits) - 1
	return Prefix{addr: p.addr & Addr(maskOf(b)), bits: uint8(b)}
}

// Sibling returns the other half of p's supernet: the prefix of the same
// length whose final network bit is flipped. Sibling of the default route is
// the default route.
func (p Prefix) Sibling() Prefix {
	if p.bits == 0 {
		return p
	}
	return Prefix{addr: p.addr ^ Addr(1<<(32-p.bits)), bits: p.bits}
}

// Halves splits p into its two component prefixes of length bits+1.
// It panics if p is a /32.
func (p Prefix) Halves() (lo, hi Prefix) {
	if p.bits >= 32 {
		panic("netaddr: cannot halve a /32")
	}
	b := p.bits + 1
	lo = Prefix{addr: p.addr, bits: b}
	hi = Prefix{addr: p.addr | Addr(1<<(32-b)), bits: b}
	return lo, hi
}

// Bit returns bit i (0 = most significant network bit) of p's address.
func (p Prefix) Bit(i int) int {
	return int(p.addr>>(31-uint(i))) & 1
}

// NumAddresses returns the number of addresses covered by p.
func (p Prefix) NumAddresses() uint64 {
	return 1 << (32 - uint(p.bits))
}

// Compare orders prefixes first by address, then by mask length (shorter
// first). The order is total and matches routing-table display convention.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

func maskOf(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(bits))
}

// Mask returns the netmask of p as an address, e.g. 255.255.255.0 for a /24.
func (p Prefix) Mask() Addr { return Addr(maskOf(int(p.bits))) }
