package netaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.42.113.7", 0xc02a7107, true},
		{"10.0.0.1", 0x0a000001, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.0", 0, false},
		{"-1.0.0.0", 0, false},
		{"01.2.3.4", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %#x, want %#x", c.in, uint32(got), uint32(c.want))
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := MustParseAddr("192.42.113.7")
	o := a.Octets()
	if o != [4]byte{192, 42, 113, 7} {
		t.Fatalf("Octets = %v", o)
	}
	if AddrFromOctets(o) != a {
		t.Fatalf("AddrFromOctets(Octets) != a")
	}
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"192.42.113.0/24", "192.42.113.0/24", true},
		{"192.42.113/24", "192.42.113.0/24", true}, // paper's abbreviated form
		{"10/8", "10.0.0.0/8", true},
		{"0.0.0.0/0", "0.0.0.0/0", true},
		{"255.255.255.255/32", "255.255.255.255/32", true},
		{"192.42.113.1/24", "", false}, // host bits set
		{"192.42.113.0/33", "", false},
		{"192.42.113.0/-1", "", false},
		{"192.42.113.0", "", false},
		{"bogus/8", "", false},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePrefix(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && p.String() != c.want {
			t.Errorf("ParsePrefix(%q) = %v, want %v", c.in, p, c.want)
		}
	}
}

func TestPrefixFromZeroesHostBits(t *testing.T) {
	p, err := PrefixFrom(MustParseAddr("10.1.2.3"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.1.0.0/16" {
		t.Fatalf("got %v", p)
	}
	if !p.IsValid() {
		t.Fatalf("prefix should be valid")
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(a uint32, b uint8) bool {
		bits := int(b % 33)
		p := MustPrefix(Addr(a), bits)
		back, err := ParsePrefix(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	p := MustParsePrefix("192.42.113.0/24")
	if !p.Contains(MustParseAddr("192.42.113.200")) {
		t.Error("should contain .200")
	}
	if p.Contains(MustParseAddr("192.42.114.0")) {
		t.Error("should not contain 192.42.114.0")
	}
	def := MustParsePrefix("0.0.0.0/0")
	if !def.Contains(MustParseAddr("1.2.3.4")) {
		t.Error("default route contains everything")
	}
}

func TestContainsPrefixAndOverlaps(t *testing.T) {
	super := MustParsePrefix("10.0.0.0/8")
	sub := MustParsePrefix("10.1.0.0/16")
	other := MustParsePrefix("11.0.0.0/8")
	if !super.ContainsPrefix(sub) || super.ContainsPrefix(other) {
		t.Error("ContainsPrefix wrong")
	}
	if sub.ContainsPrefix(super) {
		t.Error("sub should not contain super")
	}
	if !super.Overlaps(sub) || !sub.Overlaps(super) || super.Overlaps(other) {
		t.Error("Overlaps wrong")
	}
	if !super.ContainsPrefix(super) {
		t.Error("prefix contains itself")
	}
}

func TestSupernetSiblingHalves(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if got := p.Supernet(); got != MustParsePrefix("10.0.0.0/15") {
		t.Errorf("Supernet = %v", got)
	}
	if got := p.Sibling(); got != MustParsePrefix("10.0.0.0/16") {
		t.Errorf("Sibling = %v", got)
	}
	lo, hi := p.Halves()
	if lo != MustParsePrefix("10.1.0.0/17") || hi != MustParsePrefix("10.1.128.0/17") {
		t.Errorf("Halves = %v, %v", lo, hi)
	}
	def := MustParsePrefix("0.0.0.0/0")
	if def.Supernet() != def || def.Sibling() != def {
		t.Error("default route supernet/sibling should be itself")
	}
}

func TestHalvesInverseOfSupernet(t *testing.T) {
	f := func(a uint32, b uint8) bool {
		bits := int(b%32) + 1 // 1..32 so Supernet is meaningful
		p := MustPrefix(Addr(a), bits)
		sup := p.Supernet()
		lo, hi := sup.Halves()
		return lo == p || hi == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBitAndMask(t *testing.T) {
	p := MustParsePrefix("128.0.0.0/1")
	if p.Bit(0) != 1 {
		t.Error("top bit should be 1")
	}
	q := MustParsePrefix("64.0.0.0/2")
	if q.Bit(0) != 0 || q.Bit(1) != 1 {
		t.Error("bits of 64/2 wrong")
	}
	if MustParsePrefix("255.255.255.0/24").Mask() != MustParseAddr("255.255.255.0") {
		t.Error("mask wrong")
	}
}

func TestNumAddresses(t *testing.T) {
	if MustParsePrefix("10.0.0.0/8").NumAddresses() != 1<<24 {
		t.Error("/8 size wrong")
	}
	if MustParsePrefix("1.2.3.4/32").NumAddresses() != 1 {
		t.Error("/32 size wrong")
	}
	if MustParsePrefix("0.0.0.0/0").NumAddresses() != 1<<32 {
		t.Error("/0 size wrong")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	ps := []Prefix{
		MustParsePrefix("0.0.0.0/0"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.0.0.0/16"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("192.168.0.0/16"),
	}
	for i := range ps {
		for j := range ps {
			got := ps[i].Compare(ps[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ps[i], ps[j], got, want)
			}
		}
	}
}

func TestAllocatorBasic(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/8"))
	seen := map[Prefix]bool{}
	for i := 0; i < 64; i++ {
		p, err := al.Alloc(24)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if p.Bits() != 24 {
			t.Fatalf("got /%d", p.Bits())
		}
		if !al.Parent().ContainsPrefix(p) {
			t.Fatalf("%v not in parent", p)
		}
		if seen[p] {
			t.Fatalf("duplicate allocation %v", p)
		}
		for q := range seen {
			if q.Overlaps(p) {
				t.Fatalf("%v overlaps %v", p, q)
			}
		}
		seen[p] = true
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/30"))
	if _, err := al.Alloc(31); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc(31); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc(31); err == nil {
		t.Fatal("expected exhaustion")
	}
	if _, err := al.Alloc(8); err == nil {
		t.Fatal("cannot allocate shorter than parent")
	}
}

func TestAllocatorFreeCoalesce(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/24"))
	total := al.FreeSpace()
	var got []Prefix
	for i := 0; i < 8; i++ {
		p, err := al.Alloc(27)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	if al.FreeSpace() != 0 {
		t.Fatalf("free space should be 0, got %d", al.FreeSpace())
	}
	for _, p := range got {
		if err := al.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if al.FreeSpace() != total {
		t.Fatalf("free space %d after full free, want %d", al.FreeSpace(), total)
	}
	// After coalescing we can allocate the whole /24 again.
	p, err := al.Alloc(24)
	if err != nil {
		t.Fatalf("coalesce failed: %v", err)
	}
	if p != al.Parent() {
		t.Fatalf("got %v", p)
	}
}

func TestAllocatorDoubleFree(t *testing.T) {
	al := NewAllocator(MustParsePrefix("10.0.0.0/24"))
	p, err := al.Alloc(26)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := al.Free(p); err == nil {
		t.Fatal("double free should error")
	}
	if err := al.Free(MustParsePrefix("11.0.0.0/24")); err == nil {
		t.Fatal("free outside parent should error")
	}
}

func TestAllocatorRandomizedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	al := NewAllocator(MustParsePrefix("172.16.0.0/12"))
	live := map[Prefix]bool{}
	for i := 0; i < 500; i++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			bits := 16 + rng.Intn(13)
			p, err := al.Alloc(bits)
			if err != nil {
				continue
			}
			for q := range live {
				if q.Overlaps(p) {
					t.Fatalf("overlap: %v vs %v", p, q)
				}
			}
			live[p] = true
		} else {
			for q := range live {
				if err := al.Free(q); err != nil {
					t.Fatalf("free %v: %v", q, err)
				}
				delete(live, q)
				break
			}
		}
	}
}

func BenchmarkParsePrefix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParsePrefix("192.42.113.0/24"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefixString(b *testing.B) {
	p := MustParsePrefix("192.42.113.0/24")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.String()
	}
}
