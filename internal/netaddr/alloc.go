package netaddr

import "fmt"

// Allocator hands out non-overlapping prefixes from a parent block, mimicking
// a registry (or a provider carving customer networks out of its CIDR block).
// Allocation is first-fit over a simple free list and deterministic: the same
// sequence of Alloc calls always yields the same prefixes.
type Allocator struct {
	parent Prefix
	free   []Prefix // disjoint free blocks, kept sorted by Compare
}

// NewAllocator returns an allocator over the given parent block.
func NewAllocator(parent Prefix) *Allocator {
	return &Allocator{parent: parent, free: []Prefix{parent}}
}

// Parent returns the block this allocator draws from.
func (al *Allocator) Parent() Prefix { return al.parent }

// Alloc carves a prefix of the requested mask length out of the free space.
// It returns an error when the block is exhausted or bits is shorter than the
// parent's mask.
func (al *Allocator) Alloc(bits int) (Prefix, error) {
	if bits < al.parent.Bits() || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: cannot allocate /%d from %v", bits, al.parent)
	}
	for i, blk := range al.free {
		if blk.Bits() > bits {
			continue
		}
		// Remove blk, split it down to the requested size, return the low
		// half and push the remainders back onto the free list.
		al.free = append(al.free[:i], al.free[i+1:]...)
		for blk.Bits() < bits {
			lo, hi := blk.Halves()
			al.insertFree(hi)
			blk = lo
		}
		return blk, nil
	}
	return Prefix{}, fmt.Errorf("netaddr: block %v exhausted for /%d", al.parent, bits)
}

// Free returns a previously allocated prefix to the pool. Adjacent buddies
// are coalesced so the space can be re-carved at different sizes.
func (al *Allocator) Free(p Prefix) error {
	if !al.parent.ContainsPrefix(p) {
		return fmt.Errorf("netaddr: %v is not within %v", p, al.parent)
	}
	for _, blk := range al.free {
		if blk.Overlaps(p) {
			return fmt.Errorf("netaddr: double free of %v (overlaps free %v)", p, blk)
		}
	}
	// Coalesce with the buddy repeatedly.
	for p.Bits() > al.parent.Bits() {
		sib := p.Sibling()
		idx := -1
		for i, blk := range al.free {
			if blk == sib {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		al.free = append(al.free[:idx], al.free[idx+1:]...)
		p = p.Supernet()
	}
	al.insertFree(p)
	return nil
}

// FreeSpace returns the total number of addresses currently unallocated.
func (al *Allocator) FreeSpace() uint64 {
	var n uint64
	for _, blk := range al.free {
		n += blk.NumAddresses()
	}
	return n
}

func (al *Allocator) insertFree(p Prefix) {
	lo, hi := 0, len(al.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if al.free[mid].Compare(p) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	al.free = append(al.free, Prefix{})
	copy(al.free[lo+1:], al.free[lo:])
	al.free[lo] = p
}
