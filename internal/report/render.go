// Package report computes and renders the paper's tables and figures from
// pipeline statistics: fixed-width ASCII tables, density grids, histogram
// bars, and series listings. Each FigN/TableN function returns a structured
// result (asserted on by the benchmark harness) whose String method renders
// the same rows or series the paper reports.
package report

import (
	"fmt"
	"strings"
)

// Table is a fixed-width ASCII table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Note is printed under the table.
	Note string
}

// String renders the table.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Bar renders a horizontal bar of width proportional to v/max (max width
// cols).
func Bar(v, max float64, cols int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(cols))
	if n > cols {
		n = cols
	}
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// DensityRow renders one row of a Figure-3-style density grid: '.' for
// below-threshold slots, '#' above, ' ' for missing data.
func DensityRow(values []float64, threshold float64, missing []bool) string {
	var sb strings.Builder
	for i, v := range values {
		switch {
		case missing != nil && i < len(missing) && missing[i]:
			sb.WriteByte(' ')
		case v > threshold:
			sb.WriteByte('#')
		default:
			sb.WriteByte('.')
		}
	}
	return sb.String()
}

// FormatCount renders large counts with thousands separators.
func FormatCount(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}
