package report

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"instability/internal/analysis"
	"instability/internal/bgp"
	"instability/internal/core"
	"instability/internal/rib"
	"instability/internal/topology"
)

// ---------------------------------------------------------------- Table 1

// PeerDayTotals is one provider's row of Table 1.
type PeerDayTotals struct {
	Peer     core.PeerKey
	Announce int
	Withdraw int
	Unique   int // distinct prefixes touched
}

// Table1Result reproduces the paper's Table 1: per-provider update totals
// for one day at one exchange.
type Table1Result struct {
	Date core.Date
	Rows []PeerDayTotals
}

// Table1 computes per-provider announce/withdraw/unique totals for the
// given day.
func Table1(acc *core.Accumulator, date core.Date) Table1Result {
	s := acc.Day(date)
	uniq := make(map[bgp.ASN]map[string]struct{})
	for pa := range s.ByPrefixAS {
		set := uniq[pa.AS]
		if set == nil {
			set = make(map[string]struct{})
			uniq[pa.AS] = set
		}
		set[pa.Prefix.String()] = struct{}{}
	}
	res := Table1Result{Date: date}
	for peer, pd := range s.ByPeer {
		res.Rows = append(res.Rows, PeerDayTotals{
			Peer:     peer,
			Announce: pd.Announcements,
			Withdraw: pd.Withdrawals,
			Unique:   len(uniq[peer.AS]),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Peer.AS < res.Rows[j].Peer.AS })
	return res
}

// String renders Table 1.
func (r Table1Result) String() string {
	t := Table{
		Title:  fmt.Sprintf("Table 1: update totals per provider on %s", r.Date),
		Header: []string{"Provider", "Announce", "Withdraw", "Unique"},
		Note:   "Totals reflect customers and aggregation quality, not provider performance.",
	}
	for i, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Provider %c (%v)", 'A'+i%26, row.Peer.AS),
			FormatCount(row.Announce), FormatCount(row.Withdraw), FormatCount(row.Unique),
		})
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 1

// Fig1Result lists the exchange points and their route-server peer counts.
type Fig1Result struct {
	Exchanges []string
	Peers     []int
}

// Fig1 reports the measured exchange points (the paper's map becomes a peer
// census).
func Fig1(topo *topology.Topology) Fig1Result {
	var r Fig1Result
	for _, e := range topo.Exchanges {
		r.Exchanges = append(r.Exchanges, e.Name)
		r.Peers = append(r.Peers, len(e.Peers))
	}
	return r
}

// String renders Figure 1.
func (r Fig1Result) String() string {
	t := Table{
		Title:  "Figure 1: measured exchange points",
		Header: []string{"Exchange", "Route-server peers"},
	}
	for i := range r.Exchanges {
		t.Rows = append(t.Rows, []string{r.Exchanges[i], fmt.Sprintf("%d", r.Peers[i])})
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 2

// Fig2Result is the monthly class breakdown (WWDup excluded, as in the
// paper's Figure 2).
type Fig2Result struct {
	Months []core.MonthKey
	// Counts[m][class] for the classes AADiff, WADiff, WADup, AADup, Other.
	Counts map[core.MonthKey][core.NumClasses]int
}

// Fig2 computes the monthly breakdown of update classes.
func Fig2(acc *core.Accumulator) Fig2Result {
	counts := acc.MonthlyCounts()
	r := Fig2Result{Counts: counts}
	for m := range counts {
		r.Months = append(r.Months, m)
	}
	sort.Slice(r.Months, func(i, j int) bool {
		a, b := r.Months[i], r.Months[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		return a.Month < b.Month
	})
	return r
}

// String renders Figure 2 as a table plus bars.
func (r Fig2Result) String() string {
	t := Table{
		Title:  "Figure 2: monthly breakdown of routing updates (WWDup excluded)",
		Header: []string{"Month", "AADiff", "WADiff", "WADup", "AADup", "Other"},
	}
	for _, m := range r.Months {
		c := r.Counts[m]
		t.Rows = append(t.Rows, []string{
			m.String(),
			FormatCount(c[core.AADiff]), FormatCount(c[core.WADiff]),
			FormatCount(c[core.WADup]), FormatCount(c[core.AADup]),
			FormatCount(c[core.Other]),
		})
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 3

// Fig3Result is the update density matrix: one row per day, 144 ten-minute
// slots, thresholded on the detrended log of instability.
type Fig3Result struct {
	Start time.Time
	// Grid[d][s] is the raw instability count for day d, slot s.
	Grid [][]float64
	// Above[d][s] marks slots above the detrended threshold.
	Above [][]bool
	// Missing[d][s] marks slots with no data on outage days.
	Missing [][]bool
	// TrendSlope is the fitted linear growth of log instability per slot.
	TrendSlope float64
	// Weekend[d] marks Saturdays and Sundays.
	Weekend []bool
}

// Fig3 computes the density matrix with log detrending, mirroring §5.1.
func Fig3(acc *core.Accumulator, outageDays map[core.Date]bool) Fig3Result {
	start, series := acc.TenMinSeries()
	days := len(series) / core.TenMinBins
	res, slope := analysis.LogDetrend(series)
	// Threshold above the mean of the detrended data (the paper picks a
	// point above the mean).
	threshold := analysis.Mean(res) + 0.5
	out := Fig3Result{Start: start, TrendSlope: slope * core.TenMinBins} // per day
	for d := 0; d < days; d++ {
		date := core.DateOf(start.AddDate(0, 0, d))
		row := series[d*core.TenMinBins : (d+1)*core.TenMinBins]
		resRow := res[d*core.TenMinBins : (d+1)*core.TenMinBins]
		above := make([]bool, core.TenMinBins)
		missing := make([]bool, core.TenMinBins)
		for s := range above {
			above[s] = resRow[s] > threshold
			missing[s] = outageDays[date] && row[s] == 0
		}
		out.Grid = append(out.Grid, row)
		out.Above = append(out.Above, above)
		out.Missing = append(out.Missing, missing)
		wd := date.Weekday()
		out.Weekend = append(out.Weekend, wd == time.Saturday || wd == time.Sunday)
	}
	return out
}

// String renders the density matrix, one text row per day (time runs across).
func (r Fig3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: instability density (rows=days from %s, cols=10-minute slots; '#' above detrended threshold)\n",
		r.Start.Format("2006-01-02"))
	fmt.Fprintf(&sb, "fitted log-linear trend: %+.4f per day\n", r.TrendSlope)
	for d := range r.Above {
		marker := ' '
		if r.Weekend[d] {
			marker = 'w'
		}
		vals := r.Grid[d]
		thresholded := make([]float64, len(vals))
		for i := range vals {
			if r.Above[d][i] {
				thresholded[i] = 1
			}
		}
		sb.WriteByte(byte(marker))
		sb.WriteByte(' ')
		sb.WriteString(DensityRow(thresholded, 0.5, r.Missing[d]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 4

// Fig4Result is one week of ten-minute instability aggregates.
type Fig4Result struct {
	Start  time.Time
	Series []float64 // 7*144 slots
}

// Fig4 extracts a representative week starting at the given date.
func Fig4(acc *core.Accumulator, weekStart core.Date) Fig4Result {
	start, series := acc.TenMinSeries()
	first := core.DateOf(start)
	offset := int(weekStart-first) * core.TenMinBins
	out := Fig4Result{Start: weekStart.Time()}
	for i := 0; i < 7*core.TenMinBins; i++ {
		if idx := offset + i; idx >= 0 && idx < len(series) {
			out.Series = append(out.Series, series[idx])
		}
	}
	return out
}

// String renders the week as a per-2-hour bar chart.
func (r Fig4Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: week of instability starting %s (2-hour bars)\n", r.Start.Format("2006-01-02 Monday"))
	max := 0.0
	agg := make([]float64, len(r.Series)/12)
	for i := range agg {
		for j := 0; j < 12; j++ {
			agg[i] += r.Series[i*12+j]
		}
		if agg[i] > max {
			max = agg[i]
		}
	}
	for i, v := range agg {
		day := r.Start.AddDate(0, 0, i/12)
		fmt.Fprintf(&sb, "%s %02d:00 %6.0f %s\n", day.Format("Mon"), (i%12)*2, v, Bar(v, max, 50))
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 5

// Fig5Result carries the spectral analysis of hourly instability.
type Fig5Result struct {
	// FFTPeaks and MEMPeaks are the top spectral peaks (period in hours).
	FFTPeaks []analysis.Peak
	MEMPeaks []analysis.Peak
	// SSA lists the top singular-spectrum components.
	SSA []analysis.SSAComponent
	// Significant are the FFT peaks exceeding the 99% white-noise level.
	Significant []analysis.Peak
}

// Fig5 runs the paper's §5.1 time-series analysis on the accumulator's
// hourly instability series (log-detrended, as in the paper).
func Fig5(acc *core.Accumulator, seed int64) Fig5Result {
	_, hourly := acc.HourlySeries()
	detrended, _ := analysis.LogDetrend(hourly)
	var out Fig5Result
	if len(detrended) < 64 {
		return out
	}
	freqs, power := analysis.CorrelogramFFT(detrended, min(len(detrended)/3, 24*21))
	out.FFTPeaks = analysis.TopPeaks(freqs, power, 5)
	mf, mp := analysis.MEMSpectrum(detrended, min(len(detrended)/4, 96), 1024)
	out.MEMPeaks = analysis.TopPeaks(mf, mp, 5)
	window := 24 * 8
	if len(detrended) >= 2*window {
		out.SSA = analysis.SSA(detrended, window, 5)
	}
	rng := rand.New(rand.NewSource(seed))
	out.Significant = analysis.SignificantPeaks(detrended, 5, 30, 0.99, rng)
	return out
}

// HasPeriod reports whether any of the peaks corresponds to a period within
// tol (fractional) of the target period in samples.
func HasPeriod(peaks []analysis.Peak, period, tol float64) bool {
	for _, p := range peaks {
		got := analysis.PeriodOf(p.Freq)
		if got > period*(1-tol) && got < period*(1+tol) {
			return true
		}
	}
	return false
}

// String renders Figure 5.
func (r Fig5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: spectral analysis of hourly instability (periods in hours)\n")
	write := func(name string, peaks []analysis.Peak) {
		fmt.Fprintf(&sb, "%-12s", name)
		for _, p := range peaks {
			fmt.Fprintf(&sb, "  %.1fh", analysis.PeriodOf(p.Freq))
		}
		sb.WriteByte('\n')
	}
	write("FFT peaks:", r.FFTPeaks)
	write("MEM peaks:", r.MEMPeaks)
	write("99% sig.:", r.Significant)
	sb.WriteString("SSA components (variance share @ period):\n")
	for i, c := range r.SSA {
		fmt.Fprintf(&sb, "  %d: %.1f%% @ %.1fh\n", i+1, c.VarianceShare*100, c.Period)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 6

// Fig6Point is one (peer, day) observation: share of the routing table vs
// share of that day's updates in one class.
type Fig6Point struct {
	Peer        core.PeerKey
	Date        core.Date
	TableShare  float64
	UpdateShare float64
}

// Fig6Result holds the scatter per class.
type Fig6Result struct {
	Points map[core.Class][]Fig6Point
	// Correlation is the Pearson correlation between table share and update
	// share per class; the paper finds no strong correlation.
	Correlation map[core.Class]float64
}

// Fig6 computes the AS-contribution scatter for AADiff, WADiff, AADup,
// WADup.
func Fig6(acc *core.Accumulator) Fig6Result {
	classes := []core.Class{core.AADiff, core.WADiff, core.AADup, core.WADup}
	out := Fig6Result{
		Points:      make(map[core.Class][]Fig6Point),
		Correlation: make(map[core.Class]float64),
	}
	for _, d := range acc.Dates() {
		s := acc.Days[d]
		if s.TotalTable == 0 {
			continue
		}
		var dayTotals [core.NumClasses]int
		for _, pd := range s.ByPeer {
			for c, v := range pd.Counts {
				dayTotals[c] += v
			}
		}
		for peer, pd := range s.ByPeer {
			tableShare := float64(s.PeerTable[peer]) / float64(s.TotalTable)
			for _, c := range classes {
				if dayTotals[c] == 0 {
					continue
				}
				out.Points[c] = append(out.Points[c], Fig6Point{
					Peer: peer, Date: d,
					TableShare:  tableShare,
					UpdateShare: float64(pd.Counts[c]) / float64(dayTotals[c]),
				})
			}
		}
	}
	for _, c := range classes {
		pts := out.Points[c]
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.TableShare, p.UpdateShare
		}
		out.Correlation[c] = analysis.Correlation(xs, ys)
	}
	return out
}

// String summarizes Figure 6.
func (r Fig6Result) String() string {
	t := Table{
		Title:  "Figure 6: AS contribution to updates vs routing-table share",
		Header: []string{"Class", "Points", "corr(table share, update share)"},
		Note:   "The paper finds no correlation between AS size and update share.",
	}
	for _, c := range []core.Class{core.AADiff, core.WADiff, core.AADup, core.WADup} {
		t.Rows = append(t.Rows, []string{
			c.String(), fmt.Sprintf("%d", len(r.Points[c])), fmt.Sprintf("%+.3f", r.Correlation[c]),
		})
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 7

// Fig7Result holds daily cumulative distributions of Prefix+AS update
// counts per class.
type Fig7Result struct {
	// Support is the evaluation grid (update-count thresholds).
	Support []int
	// Curves[class][day] is the CDF evaluated on Support.
	Curves map[core.Class][][]float64
	// MedianAtTen[class] is the median (across days) share of events from
	// Prefix+AS pairs seen <= 10 times.
	MedianAtTen map[core.Class]float64
	// MedianAtFifty is the same at <= 50 events.
	MedianAtFifty map[core.Class]float64
}

// Fig7 computes the daily Prefix+AS cumulative distributions.
func Fig7(acc *core.Accumulator) Fig7Result {
	classes := []core.Class{core.AADiff, core.WADiff, core.AADup, core.WADup}
	support := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	out := Fig7Result{
		Support:       support,
		Curves:        make(map[core.Class][][]float64),
		MedianAtTen:   make(map[core.Class]float64),
		MedianAtFifty: make(map[core.Class]float64),
	}
	idxOf := func(v int) int {
		for i, s := range support {
			if s == v {
				return i
			}
		}
		return -1
	}
	at10, at50 := idxOf(10), idxOf(50)
	perClassAt10 := make(map[core.Class][]float64)
	perClassAt50 := make(map[core.Class][]float64)
	for _, d := range acc.Dates() {
		s := acc.Days[d]
		for _, c := range classes {
			var counts []int
			for _, pc := range s.ByPrefixAS {
				if pc[c] > 0 {
					counts = append(counts, pc[c])
				}
			}
			if len(counts) == 0 {
				continue
			}
			curve := analysis.CDF(counts, support)
			out.Curves[c] = append(out.Curves[c], curve)
			perClassAt10[c] = append(perClassAt10[c], curve[at10])
			perClassAt50[c] = append(perClassAt50[c], curve[at50])
		}
	}
	for _, c := range classes {
		out.MedianAtTen[c] = analysis.Quantile(perClassAt10[c], 0.5)
		out.MedianAtFifty[c] = analysis.Quantile(perClassAt50[c], 0.5)
	}
	return out
}

// String summarizes Figure 7.
func (r Fig7Result) String() string {
	t := Table{
		Title:  "Figure 7: cumulative distribution of Prefix+AS update counts",
		Header: []string{"Class", "days", "median share from pairs <=10/day", "<=50/day"},
	}
	for _, c := range []core.Class{core.AADiff, core.WADiff, core.AADup, core.WADup} {
		t.Rows = append(t.Rows, []string{
			c.String(), fmt.Sprintf("%d", len(r.Curves[c])),
			fmt.Sprintf("%.0f%%", r.MedianAtTen[c]*100),
			fmt.Sprintf("%.0f%%", r.MedianAtFifty[c]*100),
		})
	}
	return t.String()
}

// ---------------------------------------------------------------- Figure 8

// Fig8Result holds the inter-arrival histograms with per-day quartiles.
type Fig8Result struct {
	// Median/Q1/Q3[class][bin] are the daily-proportion quartiles.
	Median map[core.Class][]float64
	Q1     map[core.Class][]float64
	Q3     map[core.Class][]float64
	// ThirtyAndSixty[class] is the median combined share of the 30s and 1m
	// bins (the paper: about half).
	ThirtyAndSixty map[core.Class]float64
}

// Fig8 computes inter-arrival histogram quartiles across days.
func Fig8(acc *core.Accumulator) Fig8Result {
	classes := []core.Class{core.AADiff, core.WADiff, core.AADup, core.WADup}
	out := Fig8Result{
		Median:         make(map[core.Class][]float64),
		Q1:             make(map[core.Class][]float64),
		Q3:             make(map[core.Class][]float64),
		ThirtyAndSixty: make(map[core.Class]float64),
	}
	for _, c := range classes {
		perBin := make([][]float64, core.NumBins)
		var combined []float64
		for _, d := range acc.Dates() {
			s := acc.Days[d]
			total := 0
			for _, v := range s.InterArrival[c] {
				total += v
			}
			if total == 0 {
				continue
			}
			for b, v := range s.InterArrival[c] {
				perBin[b] = append(perBin[b], float64(v)/float64(total))
			}
			combined = append(combined, float64(s.InterArrival[c][2]+s.InterArrival[c][3])/float64(total))
		}
		med := make([]float64, core.NumBins)
		q1 := make([]float64, core.NumBins)
		q3 := make([]float64, core.NumBins)
		for b := range perBin {
			q1[b], med[b], q3[b] = analysis.Quartiles(perBin[b])
		}
		out.Median[c], out.Q1[c], out.Q3[c] = med, q1, q3
		out.ThirtyAndSixty[c] = analysis.Quantile(combined, 0.5)
	}
	return out
}

// String renders Figure 8.
func (r Fig8Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 8: inter-arrival time histograms (median daily proportion per bin)\n")
	fmt.Fprintf(&sb, "%-8s", "bin")
	for _, l := range core.BinLabels {
		fmt.Fprintf(&sb, "%6s", l)
	}
	sb.WriteByte('\n')
	for _, c := range []core.Class{core.AADiff, core.WADiff, core.AADup, core.WADup} {
		fmt.Fprintf(&sb, "%-8s", c)
		for _, v := range r.Median[c] {
			fmt.Fprintf(&sb, "%6.2f", v)
		}
		fmt.Fprintf(&sb, "   [30s+1m share: %.0f%%]\n", r.ThirtyAndSixty[c]*100)
	}
	return sb.String()
}

// ---------------------------------------------------------------- Figure 9

// Fig9Day is one day's proportions of routes affected.
type Fig9Day struct {
	Date core.Date
	// WADiffFrac etc. are fractions of the routing table touched by at
	// least one event of the class.
	WADiffFrac float64
	AADiffFrac float64
	AnyFrac    float64
	StableFrac float64
}

// Fig9Result is the daily series of affected-route proportions.
type Fig9Result struct {
	Days []Fig9Day
}

// Fig9 computes the proportion of routes affected per day, skipping days
// with collector outages (the paper keeps days with >=80% of data).
func Fig9(acc *core.Accumulator, skip map[core.Date]bool) Fig9Result {
	var out Fig9Result
	for _, d := range acc.Dates() {
		if skip[d] {
			continue
		}
		s := acc.Days[d]
		if s.TotalTable == 0 {
			continue
		}
		table := float64(s.TotalTable)
		day := Fig9Day{Date: d}
		day.WADiffFrac = float64(s.RoutesAffected(func(c *[core.NumClasses]int) bool { return c[core.WADiff] > 0 })) / table
		day.AADiffFrac = float64(s.RoutesAffected(func(c *[core.NumClasses]int) bool { return c[core.AADiff] > 0 })) / table
		day.AnyFrac = float64(s.RoutesAffected(func(c *[core.NumClasses]int) bool {
			for _, v := range c {
				if v > 0 {
					return true
				}
			}
			return false
		})) / table
		instab := float64(s.RoutesAffected(func(c *[core.NumClasses]int) bool {
			return c[core.WADiff] > 0 || c[core.AADiff] > 0 || c[core.WADup] > 0
		}))
		day.StableFrac = 1 - instab/table
		out.Days = append(out.Days, day)
	}
	return out
}

// String renders Figure 9 medians.
func (r Fig9Result) String() string {
	var wa, aa, any, stable []float64
	for _, d := range r.Days {
		wa = append(wa, d.WADiffFrac)
		aa = append(aa, d.AADiffFrac)
		any = append(any, d.AnyFrac)
		stable = append(stable, d.StableFrac)
	}
	t := Table{
		Title:  "Figure 9: proportion of routes affected by updates per day",
		Header: []string{"Metric", "Q1", "Median", "Q3"},
	}
	row := func(name string, xs []float64) {
		q1, med, q3 := analysis.Quartiles(xs)
		t.Rows = append(t.Rows, []string{name,
			fmt.Sprintf("%.0f%%", q1*100), fmt.Sprintf("%.0f%%", med*100), fmt.Sprintf("%.0f%%", q3*100)})
	}
	row(">=1 WADiff", wa)
	row(">=1 AADiff", aa)
	row(">=1 any event", any)
	row("stable (no instability)", stable)
	return t.String()
}

// --------------------------------------------------------------- Figure 10

// Fig10Result is the multihomed-prefix census time series.
type Fig10Result struct {
	Dates      []core.Date
	Multihomed []int
	Prefixes   []int
	// GrowthPerDay is the least-squares slope of the multihomed count.
	GrowthPerDay float64
	// FinalShare is multihomed/prefixes on the last day.
	FinalShare float64
}

// Fig10 builds the multihoming series from per-day censuses.
func Fig10(census map[core.Date]rib.Census) Fig10Result {
	var out Fig10Result
	for d := range census {
		out.Dates = append(out.Dates, d)
	}
	sort.Slice(out.Dates, func(i, j int) bool { return out.Dates[i] < out.Dates[j] })
	series := make([]float64, 0, len(out.Dates))
	for _, d := range out.Dates {
		c := census[d]
		out.Multihomed = append(out.Multihomed, c.Multihomed)
		out.Prefixes = append(out.Prefixes, c.Prefixes)
		series = append(series, float64(c.Multihomed))
	}
	_, out.GrowthPerDay = analysis.LinearFit(series)
	if n := len(out.Dates); n > 0 && out.Prefixes[n-1] > 0 {
		out.FinalShare = float64(out.Multihomed[n-1]) / float64(out.Prefixes[n-1])
	}
	return out
}

// String renders Figure 10.
func (r Fig10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: multihomed prefixes in the routing table\n")
	fmt.Fprintf(&sb, "growth: %+.2f prefixes/day; final multihomed share: %.0f%%\n",
		r.GrowthPerDay, r.FinalShare*100)
	step := len(r.Dates) / 12
	if step == 0 {
		step = 1
	}
	max := 0.0
	for _, v := range r.Multihomed {
		if float64(v) > max {
			max = float64(v)
		}
	}
	for i := 0; i < len(r.Dates); i += step {
		fmt.Fprintf(&sb, "%s %6d %s\n", r.Dates[i], r.Multihomed[i], Bar(float64(r.Multihomed[i]), max, 40))
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
