package report_test

import (
	"strings"
	"testing"

	"instability"
	"instability/internal/core"
	"instability/internal/report"
	"instability/internal/workload"
)

// fixture runs a five-week scenario with a flood and an outage through the
// standard pipeline once, shared across the figure tests.
type fixture struct {
	p        *instability.Pipeline
	gen      *workload.Generator
	floodDay core.Date
	outDay   core.Date
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	cfg := workload.SmallConfig()
	cfg.Days = 35
	cfg.Incidents = []workload.Incident{
		{Kind: workload.PathologicalFlood, Day: 10, Magnitude: 1},
		{Kind: workload.CollectorOutage, Day: 20, Magnitude: 1},
	}
	p := instability.NewPipeline()
	_, gen, err := instability.RunScenario(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	start := core.DateOf(cfg.Start)
	shared = &fixture{p: p, gen: gen, floodDay: start + 10, outDay: start + 20}
	return shared
}

func TestTable1FloodDay(t *testing.T) {
	f := getFixture(t)
	res := report.Table1(f.p.Acc, f.floodDay)
	if len(res.Rows) < 3 {
		t.Fatalf("%d providers", len(res.Rows))
	}
	// One provider must show the ISP-I signature: withdrawals an order of
	// magnitude (or more) above its announcements.
	found := false
	for _, row := range res.Rows {
		if row.Withdraw > 10*row.Announce && row.Withdraw > 1000 {
			found = true
			if row.Unique == 0 {
				t.Error("flood provider has zero unique prefixes")
			}
		}
	}
	if !found {
		t.Fatalf("no provider shows the pathological flood signature: %+v", res.Rows)
	}
	// Rows sorted by AS.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Peer.AS < res.Rows[i-1].Peer.AS {
			t.Fatal("rows not sorted")
		}
	}
	if s := res.String(); !strings.Contains(s, "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestFig1ExchangeCensus(t *testing.T) {
	f := getFixture(t)
	res := report.Fig1(f.gen.Topology())
	if len(res.Exchanges) != 5 {
		t.Fatalf("%d exchanges", len(res.Exchanges))
	}
	if res.Exchanges[0] != "Mae-East" {
		t.Fatalf("first exchange %q", res.Exchanges[0])
	}
	for i, n := range res.Peers {
		if n == 0 {
			t.Fatalf("exchange %s has 0 peers", res.Exchanges[i])
		}
		if n > res.Peers[0] {
			t.Fatal("Mae-East should be largest")
		}
	}
	if !strings.Contains(res.String(), "Mae-East") {
		t.Fatal("render missing exchange")
	}
}

func TestFig2MonthlyBreakdown(t *testing.T) {
	f := getFixture(t)
	res := report.Fig2(f.p.Acc)
	if len(res.Months) < 2 {
		t.Fatalf("months %v", res.Months)
	}
	var dup, diff int
	for _, m := range res.Months {
		c := res.Counts[m]
		dup += c[core.AADup] + c[core.WADup]
		diff += c[core.AADiff] + c[core.WADiff]
	}
	if dup <= diff {
		t.Fatalf("duplicate classes (%d) should dominate the diffs (%d), per Figure 2", dup, diff)
	}
	if !strings.Contains(res.String(), "AADup") {
		t.Fatal("render incomplete")
	}
}

func TestFig3DensityMatrix(t *testing.T) {
	f := getFixture(t)
	outs := map[core.Date]bool{f.outDay: true}
	res := report.Fig3(f.p.Acc, outs)
	if len(res.Grid) != 35 {
		t.Fatalf("%d rows", len(res.Grid))
	}
	for d, row := range res.Grid {
		if len(row) != core.TenMinBins || len(res.Above[d]) != core.TenMinBins {
			t.Fatal("row width wrong")
		}
	}
	// Weekend flags: 1996-03-01 was a Friday, so rows 1,2 are the weekend.
	if !res.Weekend[1] || !res.Weekend[2] || res.Weekend[3] {
		t.Fatalf("weekend flags wrong: %v", res.Weekend[:7])
	}
	// The outage day must show missing slots in the afternoon.
	missing := 0
	for _, m := range res.Missing[20] {
		if m {
			missing++
		}
	}
	if missing < 50 {
		t.Fatalf("outage day shows only %d missing slots", missing)
	}
	// Some slots above threshold overall.
	above := 0
	for _, row := range res.Above {
		for _, a := range row {
			if a {
				above++
			}
		}
	}
	if above == 0 {
		t.Fatal("no above-threshold density")
	}
	if !strings.Contains(res.String(), "#") {
		t.Fatal("render has no dense cells")
	}
}

func TestFig4Week(t *testing.T) {
	f := getFixture(t)
	weekStart := f.floodDay + 4 // a calm week
	res := report.Fig4(f.p.Acc, weekStart)
	if len(res.Series) != 7*core.TenMinBins {
		t.Fatalf("series len %d", len(res.Series))
	}
	sum := 0.0
	for _, v := range res.Series {
		sum += v
	}
	if sum == 0 {
		t.Fatal("empty week")
	}
	if !strings.Contains(res.String(), "Mon") {
		t.Fatal("render missing days")
	}
}

func TestFig5Spectra(t *testing.T) {
	f := getFixture(t)
	res := report.Fig5(f.p.Acc, 7)
	if len(res.FFTPeaks) == 0 || len(res.MEMPeaks) == 0 {
		t.Fatal("no spectral peaks")
	}
	if !report.HasPeriod(res.FFTPeaks, 24, 0.2) && !report.HasPeriod(res.Significant, 24, 0.2) {
		t.Fatalf("24h cycle not found: FFT %+v", res.FFTPeaks)
	}
	if len(res.SSA) != 5 {
		t.Fatalf("SSA components %d", len(res.SSA))
	}
	if len(res.Significant) == 0 {
		t.Fatal("no significant peaks against white noise")
	}
	if !strings.Contains(res.String(), "SSA") {
		t.Fatal("render incomplete")
	}
}

func TestFig6Scatter(t *testing.T) {
	f := getFixture(t)
	res := report.Fig6(f.p.Acc)
	for _, c := range []core.Class{core.AADiff, core.WADiff, core.AADup, core.WADup} {
		pts := res.Points[c]
		if len(pts) == 0 {
			t.Fatalf("no points for %v", c)
		}
		for _, p := range pts {
			if p.TableShare < 0 || p.TableShare > 1 || p.UpdateShare < 0 || p.UpdateShare > 1.000001 {
				t.Fatalf("point out of range: %+v", p)
			}
		}
		if r := res.Correlation[c]; r < -1 || r > 1 {
			t.Fatalf("correlation %v", r)
		}
	}
	if !strings.Contains(res.String(), "corr") {
		t.Fatal("render incomplete")
	}
}

func TestFig7CDF(t *testing.T) {
	f := getFixture(t)
	res := report.Fig7(f.p.Acc)
	for _, c := range []core.Class{core.AADiff, core.WADiff, core.WADup} {
		if len(res.Curves[c]) == 0 {
			t.Fatalf("no curves for %v", c)
		}
		for _, curve := range res.Curves[c] {
			for i := 1; i < len(curve); i++ {
				if curve[i] < curve[i-1]-1e-9 {
					t.Fatalf("%v CDF not monotone: %v", c, curve)
				}
			}
			if last := curve[len(curve)-1]; last < 0.99 {
				t.Fatalf("%v CDF does not reach 1: %v", c, last)
			}
		}
		if res.MedianAtFifty[c] < res.MedianAtTen[c] {
			t.Fatalf("%v median at 50 below median at 10", c)
		}
		// Paper: 80-100%% of daily instability from pairs seen <50 times.
		if res.MedianAtFifty[c] < 0.5 {
			t.Fatalf("%v: only %.0f%%%% of events from pairs <=50/day", c, res.MedianAtFifty[c]*100)
		}
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Fatal("render incomplete")
	}
}

func TestFig8InterArrival(t *testing.T) {
	f := getFixture(t)
	res := report.Fig8(f.p.Acc)
	for _, c := range []core.Class{core.AADup, core.WADup} {
		if len(res.Median[c]) != core.NumBins {
			t.Fatalf("%v medians %d bins", c, len(res.Median[c]))
		}
		for b := range res.Median[c] {
			if res.Q1[c][b] > res.Median[c][b] || res.Median[c][b] > res.Q3[c][b] {
				t.Fatalf("%v bin %d quartiles out of order", c, b)
			}
		}
		if res.ThirtyAndSixty[c] < 0.35 {
			t.Fatalf("%v 30s+1m share %.0f%%, want the dominant mass", c, res.ThirtyAndSixty[c]*100)
		}
	}
	if !strings.Contains(res.String(), "30s") {
		t.Fatal("render incomplete")
	}
}

func TestFig9Proportions(t *testing.T) {
	f := getFixture(t)
	res := report.Fig9(f.p.Acc, map[core.Date]bool{f.outDay: true, core.DateOf(workload.SmallConfig().Start): true})
	if len(res.Days) < 30 {
		t.Fatalf("%d days", len(res.Days))
	}
	var stable, wadiff []float64
	for _, d := range res.Days {
		stable = append(stable, d.StableFrac)
		wadiff = append(wadiff, d.WADiffFrac)
		if d.AnyFrac < 0 {
			t.Fatal("negative fraction")
		}
	}
	med := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if med(stable) < 0.6 {
		t.Fatalf("mean stable fraction %.2f, paper reports >0.8", med(stable))
	}
	if med(wadiff) > 0.15 {
		t.Fatalf("mean WADiff fraction %.2f, paper reports 0.03-0.10", med(wadiff))
	}
	if !strings.Contains(res.String(), "stable") {
		t.Fatal("render incomplete")
	}
}

func TestFig10Multihoming(t *testing.T) {
	f := getFixture(t)
	res := report.Fig10(f.p.CensusByDay)
	if len(res.Dates) != 35 {
		t.Fatalf("%d dates", len(res.Dates))
	}
	if res.GrowthPerDay <= 0 {
		t.Fatalf("growth %v, want positive (linear growth claim)", res.GrowthPerDay)
	}
	if res.FinalShare <= 0 {
		t.Fatal("no multihomed prefixes at end")
	}
	for i := 1; i < len(res.Dates); i++ {
		if res.Dates[i] <= res.Dates[i-1] {
			t.Fatal("dates not sorted")
		}
	}
	if !strings.Contains(res.String(), "growth") {
		t.Fatal("render incomplete")
	}
}

func TestRenderHelpers(t *testing.T) {
	tab := report.Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Note:   "n",
	}
	s := tab.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "333") || !strings.Contains(s, "n\n") {
		t.Fatalf("table render:\n%s", s)
	}
	if report.Bar(5, 10, 10) != "#####" {
		t.Fatalf("bar %q", report.Bar(5, 10, 10))
	}
	if report.Bar(0, 10, 10) != "" || report.Bar(1, 0, 10) != "" {
		t.Fatal("bar edge cases")
	}
	if report.Bar(100, 10, 10) != "##########" {
		t.Fatal("bar clamp")
	}
	if report.FormatCount(2479023) != "2,479,023" {
		t.Fatalf("FormatCount: %q", report.FormatCount(2479023))
	}
	if report.FormatCount(42) != "42" {
		t.Fatal("FormatCount small")
	}
	row := report.DensityRow([]float64{0, 1, 2}, 0.5, []bool{false, false, true})
	if row != ".# " {
		t.Fatalf("density row %q", row)
	}
}
