package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("variance %v", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	ys := make([]float64, 50)
	for i := range ys {
		ys[i] = 3 + 0.5*float64(i)
	}
	a, b := LinearFit(ys)
	if !almostEqual(a, 3, 1e-9) || !almostEqual(b, 0.5, 1e-9) {
		t.Fatalf("fit a=%v b=%v", a, b)
	}
	a, b = LinearFit([]float64{7})
	if a != 7 || b != 0 {
		t.Fatalf("single point fit a=%v b=%v", a, b)
	}
	a, b = LinearFit(nil)
	if a != 0 || b != 0 {
		t.Fatal("empty fit should be zero")
	}
}

func TestLinearFitResidualOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ys := make([]float64, 200)
	for i := range ys {
		ys[i] = 10 + 0.3*float64(i) + rng.NormFloat64()
	}
	a, b := LinearFit(ys)
	// Residuals must sum to ~0 and be uncorrelated with x.
	var sum, dot float64
	for i, y := range ys {
		r := y - (a + b*float64(i))
		sum += r
		dot += r * float64(i)
	}
	if !almostEqual(sum, 0, 1e-6) || !almostEqual(dot, 0, 1e-4) {
		t.Fatalf("residual sum %v dot %v", sum, dot)
	}
}

func TestLogDetrend(t *testing.T) {
	// Exponential growth with multiplicative daily cycle: after log-detrend
	// the residual should oscillate about zero with no growth.
	n := 24 * 60
	xs := make([]float64, n)
	for i := range xs {
		trend := math.Exp(0.001 * float64(i))
		cycle := math.Exp(0.5 * math.Sin(2*math.Pi*float64(i)/24))
		xs[i] = 100 * trend * cycle
	}
	res, slope := LogDetrend(xs)
	if !almostEqual(slope, 0.001, 1e-4) {
		t.Fatalf("slope %v", slope)
	}
	if m := Mean(res); !almostEqual(m, 0, 1e-9) {
		t.Fatalf("residual mean %v", m)
	}
	// First and second halves should have similar energy (trend removed).
	e1 := Variance(res[:n/2])
	e2 := Variance(res[n/2:])
	if e1 == 0 || e2/e1 > 1.5 || e1/e2 > 1.5 {
		t.Fatalf("residual energy drifted: %v vs %v", e1, e2)
	}
}

func TestLogDetrendHandlesZeros(t *testing.T) {
	res, _ := LogDetrend([]float64{0, 0, 10, 0})
	for _, r := range res {
		if math.IsInf(r, 0) || math.IsNaN(r) {
			t.Fatal("zeros produced non-finite residuals")
		}
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	n := 24 * 30
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	r := Autocorrelation(xs, 48)
	if !almostEqual(r[0], 1, 1e-12) {
		t.Fatalf("r[0] = %v", r[0])
	}
	if r[24] < 0.9 {
		t.Fatalf("r[24] = %v, want near 1 for 24-sample period", r[24])
	}
	if r[12] > -0.9 {
		t.Fatalf("r[12] = %v, want near -1", r[12])
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if r := Autocorrelation([]float64{5, 5, 5}, 2); r[0] != 1 {
		t.Fatal("constant series should have r[0]=1 by convention")
	}
	if Autocorrelation(nil, 3) != nil {
		t.Fatal("empty series should return nil")
	}
	r := Autocorrelation([]float64{1, 2}, 10)
	if len(r) != 2 {
		t.Fatalf("lag clamping failed: %d", len(r))
	}
}

func TestQuantileAndQuartiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0.5) != 3 {
		t.Fatal("median wrong")
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Quantile(xs, 0.25) != 2 || Quantile(xs, 0.75) != 4 {
		t.Fatal("quartiles wrong")
	}
	q1, med, q3 := Quartiles([]float64{6, 1, 3, 2, 4, 5})
	if med != 3.5 || q1 != 2.25 || q3 != 4.75 {
		t.Fatalf("quartiles %v %v %v", q1, med, q3)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1f, q2f float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Mod(math.Abs(q1f), 1)
		qb := math.Mod(math.Abs(q2f), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	// Counts: three routes with 1 event, one with 10.
	counts := []int{1, 1, 1, 10}
	got := CDF(counts, []int{1, 5, 10})
	want := []float64{3.0 / 13, 3.0 / 13, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("cdf %v want %v", got, want)
		}
	}
	if out := CDF(nil, []int{1}); out[0] != 0 {
		t.Fatal("empty counts cdf should be 0")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := Correlation(xs, ys); !almostEqual(c, 1, 1e-12) {
		t.Fatalf("corr %v", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEqual(c, -1, 1e-12) {
		t.Fatalf("corr %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant corr %v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Correlation(xs, []float64{1})
}

func TestDemean(t *testing.T) {
	out := Demean([]float64{1, 2, 3})
	if Mean(out) != 0 || out[0] != -1 {
		t.Fatalf("demean %v", out)
	}
}
