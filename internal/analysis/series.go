// Package analysis provides the time-series and distribution statistics the
// paper's evaluation uses: least-squares detrending of log-transformed update
// rates, autocorrelation, FFT periodograms, Burg maximum-entropy spectral
// estimation, singular-spectrum analysis, inter-arrival histograms, and
// cumulative distributions — all implemented from scratch on the standard
// library.
package analysis

import (
	"math"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// LinearFit fits y = a + b*x by least squares over implicit x = 0..n-1 and
// returns intercept a and slope b.
func LinearFit(ys []float64) (a, b float64) {
	n := float64(len(ys))
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return ys[0], 0
	}
	var sx, sy, sxx, sxy float64
	for i, y := range ys {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// LogDetrend applies the paper's §5.1 filtering: model the rate as
// x_t = T_t * I_t, take logarithms so log x = log T + log I, remove the
// linear trend in log space by least squares, and return the residual
// (log I_t, which oscillates about zero). Zero counts are floored at 1 before
// the log so empty aggregation slots do not produce -Inf.
//
// The returned slope is the fitted linear growth rate of log activity per
// sample — the paper observed instability "increased linearly during the
// seven month period".
func LogDetrend(xs []float64) (residual []float64, slope float64) {
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x < 1 {
			x = 1
		}
		logs[i] = math.Log(x)
	}
	a, b := LinearFit(logs)
	res := make([]float64, len(xs))
	for i := range logs {
		res[i] = logs[i] - (a + b*float64(i))
	}
	return res, b
}

// Autocorrelation returns the normalized autocorrelation function of xs for
// lags 0..maxLag (biased estimator; r[0] == 1 for non-constant input).
func Autocorrelation(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	m := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		denom += (x - m) * (x - m)
	}
	r := make([]float64, maxLag+1)
	if denom == 0 {
		r[0] = 1
		return r
	}
	for lag := 0; lag <= maxLag; lag++ {
		s := 0.0
		for i := 0; i+lag < n; i++ {
			s += (xs[i] - m) * (xs[i+lag] - m)
		}
		r[lag] = s / denom
	}
	return r
}

// Demean returns xs with its mean removed.
func Demean(xs []float64) []float64 {
	m := Mean(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x - m
	}
	return out
}

// Quantile returns the q-quantile (0..1) of xs using linear interpolation
// between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func insertionSort(xs []float64) {
	// Small inputs dominate quantile use; a simple sort keeps the package
	// dependency-free of sort for float slices with NaN-free data.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Quartiles returns the 25th, 50th and 75th percentiles of xs.
func Quartiles(xs []float64) (q1, median, q3 float64) {
	return Quantile(xs, 0.25), Quantile(xs, 0.5), Quantile(xs, 0.75)
}

// CDF returns the empirical cumulative distribution of the positive integer
// counts in xs evaluated at each value in support: out[i] is the fraction of
// total mass contributed by observations <= support[i]. This matches the
// paper's Figure 7 construction, where mass is the number of events (an
// observation of value v contributes v events).
func CDF(counts []int, support []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(support))
	if total == 0 {
		return out
	}
	for i, s := range support {
		mass := 0
		for _, c := range counts {
			if c <= s {
				mass += c
			}
		}
		out[i] = float64(mass) / float64(total)
	}
	return out
}

// Correlation returns the Pearson correlation coefficient of xs and ys
// (0 when either is constant). Panics if the lengths differ.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("analysis: correlation length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
