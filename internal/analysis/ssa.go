package analysis

import (
	"math"
	"math/rand"
)

// JacobiEigen computes all eigenvalues and eigenvectors of the symmetric
// matrix a (given as rows) by the cyclic Jacobi method. It returns the
// eigenvalues in descending order with their eigenvectors as columns of v
// (v[i][j] is component i of eigenvector j). The input matrix is not
// modified.
func JacobiEigen(a [][]float64) (eigenvalues []float64, v [][]float64) {
	n := len(a)
	m := make([][]float64, n)
	v = make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = append([]float64(nil), a[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	eigenvalues = make([]float64, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = m[i][i]
	}
	// Sort descending by eigenvalue, permuting eigenvector columns.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if eigenvalues[j] > eigenvalues[best] {
				best = j
			}
		}
		if best != i {
			eigenvalues[i], eigenvalues[best] = eigenvalues[best], eigenvalues[i]
			for k := 0; k < n; k++ {
				v[k][i], v[k][best] = v[k][best], v[k][i]
			}
		}
	}
	return eigenvalues, v
}

// SSAComponent is one singular-spectrum component: its share of total
// variance and the dominant frequency of its empirical orthogonal function.
type SSAComponent struct {
	// Eigenvalue is the variance captured by the component.
	Eigenvalue float64
	// VarianceShare is Eigenvalue normalized by the eigenvalue sum.
	VarianceShare float64
	// Freq is the dominant frequency of the EOF in cycles/sample.
	Freq float64
	// Period is 1/Freq in samples.
	Period float64
}

// SSA performs singular-spectrum analysis of xs with embedding window
// length window (the Vautard–Ghil lag-covariance formulation used by the
// SSA toolkit the paper cites) and returns the top-k components by captured
// variance, each annotated with the dominant frequency of its EOF.
func SSA(xs []float64, window, k int) []SSAComponent {
	if window < 2 || len(xs) < 2*window {
		panic("analysis: SSA window must satisfy 2 <= window <= len(xs)/2")
	}
	centered := Demean(xs)
	// Toeplitz lag-covariance matrix.
	cov := make([]float64, window)
	n := len(centered)
	for lag := 0; lag < window; lag++ {
		s := 0.0
		for i := 0; i+lag < n; i++ {
			s += centered[i] * centered[i+lag]
		}
		cov[lag] = s / float64(n-lag)
	}
	mat := make([][]float64, window)
	for i := range mat {
		mat[i] = make([]float64, window)
		for j := range mat[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			mat[i][j] = cov[d]
		}
	}
	eig, vecs := JacobiEigen(mat)
	total := 0.0
	for _, e := range eig {
		if e > 0 {
			total += e
		}
	}
	if k > window {
		k = window
	}
	out := make([]SSAComponent, 0, k)
	for c := 0; c < k; c++ {
		eof := make([]float64, window)
		for i := 0; i < window; i++ {
			eof[i] = vecs[i][c]
		}
		f := DominantFreq(eof)
		comp := SSAComponent{Eigenvalue: eig[c], Freq: f, Period: PeriodOf(f)}
		if total > 0 {
			comp.VarianceShare = eig[c] / total
		}
		out = append(out, comp)
	}
	return out
}

// DominantFreq returns the frequency (cycles/sample) with the largest
// periodogram power in xs, excluding the zero frequency.
func DominantFreq(xs []float64) float64 {
	freqs, power := Periodogram(xs)
	best, bestP := 0.0, math.Inf(-1)
	for i := 1; i < len(freqs); i++ {
		if power[i] > bestP {
			best, bestP = freqs[i], power[i]
		}
	}
	return best
}

// WhiteNoiseCI estimates, by Monte Carlo, the q-quantile (e.g. 0.99) of
// periodogram power under the null hypothesis that the series is white noise
// with the same variance and length as xs. Spectral peaks above the returned
// threshold are significant at level q — the "99% confidence interval
// generated using white noise" of the paper's Figure 5b.
func WhiteNoiseCI(xs []float64, trials int, q float64, rng *rand.Rand) float64 {
	sd := math.Sqrt(Variance(xs))
	n := len(xs)
	var maxima []float64
	noise := make([]float64, n)
	for t := 0; t < trials; t++ {
		for i := range noise {
			noise[i] = rng.NormFloat64() * sd
		}
		_, power := Periodogram(noise)
		for _, p := range power[1:] {
			maxima = append(maxima, p)
		}
	}
	return Quantile(maxima, q)
}

// SignificantPeaks returns the spectrum peaks of xs whose power exceeds the
// white-noise threshold, largest first, at most k of them.
func SignificantPeaks(xs []float64, k, trials int, q float64, rng *rand.Rand) []Peak {
	freqs, power := Periodogram(xs)
	threshold := WhiteNoiseCI(xs, trials, q, rng)
	peaks := TopPeaks(freqs, power, len(power))
	var out []Peak
	for _, p := range peaks {
		if p.Power > threshold {
			out = append(out, p)
			if len(out) == k {
				break
			}
		}
	}
	return out
}
