package analysis

import (
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of xs in place using the
// iterative radix-2 Cooley–Tukey algorithm. The length must be a power of
// two; use NextPow2 and zero-padding otherwise.
func FFT(xs []complex128) {
	n := len(xs)
	if n == 0 || n&(n-1) != 0 {
		panic("analysis: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			xs[i], xs[j] = xs[j], xs[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := xs[start+k]
				b := xs[start+k+half] * w
				xs[start+k] = a + b
				xs[start+k+half] = a - b
			}
		}
	}
}

// IFFT computes the inverse DFT in place (normalized by 1/n).
func IFFT(xs []complex128) {
	n := len(xs)
	for i := range xs {
		xs[i] = cmplx.Conj(xs[i])
	}
	FFT(xs)
	for i := range xs {
		xs[i] = cmplx.Conj(xs[i]) / complex(float64(n), 0)
	}
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Periodogram estimates the power spectral density of xs at frequencies
// k/(nfft*dt) for k = 0..nfft/2, where nfft is the power of two >= len(xs)
// (data are mean-removed and zero-padded). It returns the frequencies in
// cycles per sample unit and the corresponding power values.
func Periodogram(xs []float64) (freqs, power []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	centered := Demean(xs)
	nfft := NextPow2(len(centered))
	buf := make([]complex128, nfft)
	for i, x := range centered {
		buf[i] = complex(x, 0)
	}
	FFT(buf)
	half := nfft/2 + 1
	freqs = make([]float64, half)
	power = make([]float64, half)
	norm := float64(len(centered))
	for k := 0; k < half; k++ {
		freqs[k] = float64(k) / float64(nfft)
		re, im := real(buf[k]), imag(buf[k])
		power[k] = (re*re + im*im) / norm
	}
	return freqs, power
}

// CorrelogramFFT estimates the spectrum by Fourier-transforming the
// autocorrelation function out to maxLag (the classical Blackman–Tukey
// correlogram the paper's Figure 5a labels "FFT"). A Bartlett (triangular)
// lag window tapers the ACF.
func CorrelogramFFT(xs []float64, maxLag int) (freqs, power []float64) {
	acf := Autocorrelation(xs, maxLag)
	if len(acf) == 0 {
		return nil, nil
	}
	m := len(acf) - 1
	// Symmetric extension windowed by Bartlett weights, length 2m (even).
	nfft := NextPow2(2 * (m + 1))
	buf := make([]complex128, nfft)
	for lag := 0; lag <= m; lag++ {
		w := 1 - float64(lag)/float64(m+1)
		buf[lag] = complex(acf[lag]*w, 0)
		if lag > 0 {
			buf[nfft-lag] = complex(acf[lag]*w, 0)
		}
	}
	FFT(buf)
	half := nfft/2 + 1
	freqs = make([]float64, half)
	power = make([]float64, half)
	for k := 0; k < half; k++ {
		freqs[k] = float64(k) / float64(nfft)
		power[k] = real(buf[k])
		if power[k] < 0 {
			power[k] = 0 // windowed estimates can go slightly negative
		}
	}
	return freqs, power
}

// Peak is one local maximum of a spectrum.
type Peak struct {
	// Freq is in cycles per sample.
	Freq float64
	// Power is the spectral density at the peak.
	Power float64
}

// TopPeaks finds the k largest local maxima of power (excluding the zero
// frequency), ordered by descending power.
func TopPeaks(freqs, power []float64, k int) []Peak {
	var peaks []Peak
	for i := 1; i < len(power)-1; i++ {
		if freqs[i] == 0 {
			continue
		}
		if power[i] >= power[i-1] && power[i] >= power[i+1] {
			peaks = append(peaks, Peak{Freq: freqs[i], Power: power[i]})
		}
	}
	// Selection sort is fine for the small k we use.
	for i := 0; i < len(peaks) && i < k; i++ {
		best := i
		for j := i + 1; j < len(peaks); j++ {
			if peaks[j].Power > peaks[best].Power {
				best = j
			}
		}
		peaks[i], peaks[best] = peaks[best], peaks[i]
	}
	if len(peaks) > k {
		peaks = peaks[:k]
	}
	return peaks
}

// PeriodOf converts a frequency in cycles/sample to a period in samples
// (infinity at zero frequency).
func PeriodOf(freq float64) float64 {
	if freq == 0 {
		return math.Inf(1)
	}
	return 1 / freq
}
