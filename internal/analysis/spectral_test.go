package analysis

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTKnownTransform(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1].
	xs := []complex128{1, 0, 0, 0}
	FFT(xs)
	for i, x := range xs {
		if cmplx.Abs(x-1) > 1e-12 {
			t.Fatalf("bin %d = %v", i, x)
		}
	}
	// DFT of a pure complex exponential concentrates in one bin.
	n := 64
	sig := make([]complex128, n)
	for i := range sig {
		ang := 2 * math.Pi * 5 * float64(i) / float64(n)
		sig[i] = cmplx.Exp(complex(0, ang))
	}
	FFT(sig)
	for i, x := range sig {
		want := 0.0
		if i == 5 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(x)-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %v, want %v", i, cmplx.Abs(x), want)
		}
	}
}

func TestFFTInverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]complex128, 256)
	orig := make([]complex128, len(xs))
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = xs[i]
	}
	FFT(xs)
	IFFT(xs)
	for i := range xs {
		if cmplx.Abs(xs[i]-orig[i]) > 1e-9 {
			t.Fatalf("ifft(fft) differs at %d: %v vs %v", i, xs[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 512
	xs := make([]complex128, n)
	timeEnergy := 0.0
	for i := range xs {
		v := rng.NormFloat64()
		xs[i] = complex(v, 0)
		timeEnergy += v * v
	}
	FFT(xs)
	freqEnergy := 0.0
	for _, x := range xs {
		freqEnergy += real(x)*real(x) + imag(x)*imag(x)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy)/timeEnergy > 1e-9 {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// synthDiurnalWeekly builds an hourly series with 24-hour and 168-hour
// cycles plus noise — the shape of the paper's August–September data.
func synthDiurnalWeekly(nHours int, rng *rand.Rand) []float64 {
	xs := make([]float64, nHours)
	for i := range xs {
		daily := math.Sin(2 * math.Pi * float64(i) / 24)
		weekly := 0.7 * math.Sin(2*math.Pi*float64(i)/168)
		xs[i] = 5 + 2*daily + 1.5*weekly + 0.3*rng.NormFloat64()
	}
	return xs
}

func TestPeriodogramFindsDailyAndWeeklyCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := synthDiurnalWeekly(24*61, rng) // ~2 months of hourly data
	freqs, power := Periodogram(xs)
	peaks := TopPeaks(freqs, power, 2)
	if len(peaks) != 2 {
		t.Fatalf("%d peaks", len(peaks))
	}
	periods := []float64{PeriodOf(peaks[0].Freq), PeriodOf(peaks[1].Freq)}
	found24, found168 := false, false
	for _, p := range periods {
		if p > 21 && p < 27 {
			found24 = true
		}
		if p > 140 && p < 200 {
			found168 = true
		}
	}
	if !found24 || !found168 {
		t.Fatalf("top periods %v, want ~24h and ~168h", periods)
	}
}

func TestCorrelogramFFTFindsDailyCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := synthDiurnalWeekly(24*61, rng)
	freqs, power := CorrelogramFFT(Demean(xs), 24*14)
	peaks := TopPeaks(freqs, power, 3)
	if len(peaks) == 0 {
		t.Fatal("no peaks")
	}
	found24 := false
	for _, p := range peaks {
		period := PeriodOf(p.Freq)
		if period > 21 && period < 27 {
			found24 = true
		}
	}
	if !found24 {
		t.Fatalf("correlogram peaks %v missing 24h", peaks)
	}
	for _, p := range power {
		if p < 0 {
			t.Fatal("windowed correlogram should be non-negative")
		}
	}
}

func TestBurgRecoverAR1(t *testing.T) {
	// Generate AR(1) x_t = 0.8 x_{t-1} + e and verify Burg recovers 0.8.
	rng := rand.New(rand.NewSource(13))
	n := 4096
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.8*xs[i-1] + rng.NormFloat64()
	}
	coeffs, sigma2 := Burg(xs, 1)
	if math.Abs(coeffs[0]-0.8) > 0.03 {
		t.Fatalf("AR coefficient %v, want ~0.8", coeffs[0])
	}
	if math.Abs(sigma2-1) > 0.1 {
		t.Fatalf("sigma2 %v, want ~1", sigma2)
	}
}

func TestBurgSpectrumPositiveAndPeaked(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	xs := synthDiurnalWeekly(24*61, rng)
	freqs, power := MEMSpectrum(xs, 48, 512)
	for _, p := range power {
		if p <= 0 {
			t.Fatal("MEM spectrum must be strictly positive")
		}
	}
	// Both the daily and the weekly cycle must appear among the top local
	// maxima (which dominates depends on peak sharpness).
	found24, foundLow := false, false
	for _, pk := range TopPeaks(freqs, power, 4) {
		period := PeriodOf(pk.Freq)
		if period > 20 && period < 30 {
			found24 = true
		}
		if period > 100 {
			foundLow = true
		}
	}
	if !found24 || !foundLow {
		t.Fatalf("MEM peaks %v missing 24h/weekly structure", TopPeaks(freqs, power, 4))
	}
}

func TestBurgRejectsBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Burg([]float64{1, 2}, 5)
}

func TestBurgZeroInput(t *testing.T) {
	coeffs, sigma2 := Burg(make([]float64, 64), 4)
	if sigma2 != 0 || len(coeffs) != 4 {
		t.Fatalf("zero input: coeffs %v sigma2 %v", coeffs, sigma2)
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// Symmetric matrix with known eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	eig, v := JacobiEigen(a)
	if math.Abs(eig[0]-3) > 1e-10 || math.Abs(eig[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues %v", eig)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	if math.Abs(math.Abs(v[0][0])-math.Sqrt2/2) > 1e-8 || math.Abs(v[0][0]-v[1][0]) > 1e-8 {
		t.Fatalf("eigenvector %v %v", v[0][0], v[1][0])
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 12
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i][j], a[j][i] = v, v
		}
	}
	eig, v := JacobiEigen(a)
	// Verify A v_k = lambda_k v_k for each k.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			av := 0.0
			for j := 0; j < n; j++ {
				av += a[i][j] * v[j][k]
			}
			if math.Abs(av-eig[k]*v[i][k]) > 1e-8 {
				t.Fatalf("eigenpair %d fails at row %d: %v vs %v", k, i, av, eig[k]*v[i][k])
			}
		}
	}
	// Descending order.
	for k := 1; k < n; k++ {
		if eig[k] > eig[k-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", eig)
		}
	}
	// Input not mutated.
	if a[0][1] != a[1][0] {
		t.Fatal("input mutated")
	}
}

func TestSSAFindsOscillationPair(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	xs := synthDiurnalWeekly(24*61, rng)
	comps := SSA(xs, 72, 5)
	if len(comps) != 5 {
		t.Fatalf("%d components", len(comps))
	}
	// The 24-hour oscillation appears as a pair of components with period
	// near 24 samples; the weekly cycle near 168.
	found24 := 0
	found168 := 0
	for _, c := range comps {
		if c.Period > 20 && c.Period < 30 {
			found24++
		}
		if c.Period > 60 { // window of 72 limits resolvable period; weekly shows as low-freq
			found168++
		}
	}
	if found24 < 2 {
		t.Fatalf("components %+v missing the 24h pair", comps)
	}
	if found168 < 1 {
		t.Fatalf("components %+v missing a low-frequency (weekly) component", comps)
	}
	// Variance shares are positive and sorted descending.
	for i, c := range comps {
		if c.VarianceShare <= 0 || c.VarianceShare > 1 {
			t.Fatalf("component %d share %v", i, c.VarianceShare)
		}
		if i > 0 && c.Eigenvalue > comps[i-1].Eigenvalue+1e-9 {
			t.Fatalf("eigenvalues not sorted")
		}
	}
}

func TestSSAPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SSA(make([]float64, 10), 8, 2)
}

func TestSignificantPeaksAgainstWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := synthDiurnalWeekly(24*61, rng)
	peaks := SignificantPeaks(xs, 5, 30, 0.99, rng)
	if len(peaks) == 0 {
		t.Fatal("strong cycles should be significant")
	}
	// Pure white noise should produce few or no significant peaks at q=0.999.
	noise := make([]float64, 24*61)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	noisePeaks := SignificantPeaks(noise, 5, 40, 0.9999, rng)
	if len(noisePeaks) > 2 {
		t.Fatalf("white noise yielded %d significant peaks", len(noisePeaks))
	}
}

func TestDominantFreq(t *testing.T) {
	n := 128
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Cos(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	f := DominantFreq(xs)
	if math.Abs(f-8.0/float64(n)) > 1e-9 {
		t.Fatalf("dominant freq %v, want %v", f, 8.0/float64(n))
	}
}

func BenchmarkFFT4096(b *testing.B) {
	xs := make([]complex128, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = complex(rng.NormFloat64(), 0)
	}
	buf := make([]complex128, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, xs)
		FFT(buf)
	}
}

func BenchmarkBurg(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 2048)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.7*xs[i-1] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Burg(xs, 32)
	}
}
