package analysis

import "math"

// Burg fits an autoregressive model of the given order to xs using Burg's
// method (the maximum-entropy spectral estimator, "MEM" in the paper's
// Figure 5a). It returns the AR coefficients a[1..order] (a[0] is implied 1)
// and the white-noise driving variance.
//
// The model is x_t = sum_k a_k x_{t-k} + e_t; the spectrum follows as
// sigma2 / |1 - sum_k a_k e^{-i 2 pi f k}|^2.
func Burg(xs []float64, order int) (coeffs []float64, sigma2 float64) {
	n := len(xs)
	if order < 1 || n <= order {
		panic("analysis: Burg order must be in [1, len(xs))")
	}
	f := append([]float64(nil), xs...)
	b := append([]float64(nil), xs...)
	a := make([]float64, order+1)
	prev := make([]float64, order+1)
	a[0] = 1

	// Initial prediction error power.
	e := 0.0
	for _, x := range xs {
		e += x * x
	}
	e /= float64(n)
	if e == 0 {
		return make([]float64, order), 0
	}

	for m := 1; m <= order; m++ {
		// Reflection coefficient.
		var num, den float64
		for i := m; i < n; i++ {
			num += f[i] * b[i-1]
			den += f[i]*f[i] + b[i-1]*b[i-1]
		}
		k := 0.0
		if den != 0 {
			k = 2 * num / den
		}
		// Update AR coefficients (Levinson recursion).
		copy(prev, a)
		for i := 1; i <= m; i++ {
			a[i] = prev[i] - k*prev[m-i]
		}
		e *= 1 - k*k
		// Update forward/backward prediction errors.
		for i := n - 1; i >= m; i-- {
			fi := f[i]
			f[i] = fi - k*b[i-1]
			b[i] = b[i-1] - k*fi
		}
	}
	// The recursion accumulates the prediction-error polynomial
	// A(z) = 1 + sum a_i z^-i; the model coefficients are their negation.
	coeffs = make([]float64, order)
	for i := 1; i <= order; i++ {
		coeffs[i-1] = -a[i]
	}
	return coeffs, e
}

// BurgSpectrum evaluates the maximum-entropy power spectral density of the
// AR model at nfreq evenly spaced frequencies in [0, 0.5] cycles/sample.
func BurgSpectrum(coeffs []float64, sigma2 float64, nfreq int) (freqs, power []float64) {
	freqs = make([]float64, nfreq)
	power = make([]float64, nfreq)
	for i := 0; i < nfreq; i++ {
		f := 0.5 * float64(i) / float64(nfreq-1)
		freqs[i] = f
		// Denominator |1 - sum a_k e^{-i2pifk}|^2.
		re, im := 1.0, 0.0
		for k, a := range coeffs {
			ang := -2 * math.Pi * f * float64(k+1)
			re -= a * math.Cos(ang)
			im -= a * math.Sin(ang)
		}
		den := re*re + im*im
		if den < 1e-12 {
			den = 1e-12
		}
		power[i] = sigma2 / den
	}
	return freqs, power
}

// MEMSpectrum is a convenience wrapper: fit Burg of the given order to xs
// (mean-removed) and evaluate the spectrum at nfreq points.
func MEMSpectrum(xs []float64, order, nfreq int) (freqs, power []float64) {
	coeffs, sigma2 := Burg(Demean(xs), order)
	return BurgSpectrum(coeffs, sigma2, nfreq)
}
