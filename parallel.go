package instability

import (
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/obs"
	"instability/internal/rib"
	"instability/internal/workload"
)

// ParallelPipeline is the sharded form of Pipeline: records are
// hash-partitioned by the classifier's (peer, prefix) state key across N
// worker shards, each owning a private Classifier, Accumulator, and RIB
// partition, fed through bounded channels in multi-record batches. Because
// classification history never crosses a (peer, prefix) key and RIB state
// never crosses a prefix, the shards share nothing on the hot path; EndDay
// is the only barrier, where per-shard day statistics are merged so the
// published results are identical to what the serial Pipeline produces from
// the same stream.
//
// Each shard's Classifier and RIB own private attribute/path interners, so
// the hot path stays lock-free. Interned IDs are therefore shard-local;
// MergeCensuses remaps each shard's path IDs through a fresh table at the
// barrier, which is order-independent because interning is content-addressed
// — the serial/parallel bit-for-bit contract is unaffected.
//
// The feeder side (Feed, FeedBatch, EndDay, Close) must be used from one
// goroutine, exactly like the serial Pipeline. The Events hook, when set,
// runs on shard goroutines: it is called concurrently, in per-key order
// only.
type ParallelPipeline struct {
	// Acc holds the merged per-day statistics. It is complete up to the
	// last EndDay/Close barrier; between barriers, newly fed records live
	// in the shards' private accumulators.
	Acc *core.Accumulator
	// CensusByDay snapshots the merged table census at each day end.
	CensusByDay map[core.Date]rib.Census
	// Events, when set before the first Feed, observes every classified
	// event. Called from shard goroutines: concurrently across keys, in
	// order within one (peer, prefix) key.
	Events func(core.Event)
	// DayEnd, when set, observes every day barrier on the feeder
	// goroutine, after all shards have drained the day's events — the
	// hook point for window-finalizing consumers such as the anomaly
	// detector (every Events call for the day happens-before DayEnd).
	DayEnd func(core.Date)

	shards    []*shard
	batches   [][]shardRec
	batchSize int
	peaks     map[core.Date]*peakTrack
	closed    bool
}

// ParallelConfig tunes a ParallelPipeline. The zero value is usable.
type ParallelConfig struct {
	// Shards is the number of worker shards. Default GOMAXPROCS.
	Shards int
	// BatchSize is the number of records buffered per shard before the
	// batch is handed to the shard's channel; batching amortizes channel
	// and scheduling overhead across the hot per-record work. Default 256.
	BatchSize int
	// Queue is the per-shard channel capacity in batches (the bound on
	// in-flight work, and the backpressure point). Default 4.
	Queue int
}

func (c ParallelConfig) withDefaults() ParallelConfig {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.Queue <= 0 {
		c.Queue = 4
	}
	return c
}

// shardRec is one routed record: the same record can be routed to one shard
// for classification (keyed by peer+prefix) and another for the RIB mirror
// (keyed by prefix alone); when both hashes agree it travels once with both
// flags set.
type shardRec struct {
	rec      collector.Record
	classify bool
	table    bool
}

// shardMsg is either a data batch (recs != nil) or an EndDay/Sync barrier.
type shardMsg struct {
	recs    []shardRec
	barrier *barrierReq
}

// barrierReq asks a shard to hand off its accumulator (optionally after an
// EndDay snapshot and a census) and start a fresh one.
type barrierReq struct {
	day      core.Date
	snapshot bool // call Accumulator.EndDay(classifier, day) first
	census   bool // include a partial census of the shard's RIB
	out      chan shardHandoff
}

// shardHandoff is what a shard surrenders at a barrier. The accumulator's
// ownership transfers to the feeder, so the merge runs without locks.
type shardHandoff struct {
	acc    *core.Accumulator
	census rib.PartialCensus
}

type shard struct {
	cls   *core.Classifier
	acc   *core.Accumulator
	table *rib.RIB
	in    chan shardMsg
	done  chan struct{}
}

// peakTrack reproduces the serial Accumulator's burst accounting on the
// undivided stream: PeakSecond is the one statistic a shard cannot compute
// locally (each shard sees only its share of any second), so the feeder —
// which still sees every record in time order — tracks it exactly and
// patches it over the merged per-day stats.
type peakTrack struct {
	curSec int64
	cur    int
	peak   int
}

// Parallel pipeline instrumentation.
var (
	obsParShards = obs.Default().Gauge("irtl_parallel_shards",
		"Worker shards of the most recently created parallel pipeline.")
	obsParBatches = obs.Default().Counter("irtl_parallel_batches_total",
		"Record batches dispatched to pipeline shards.")
	obsParBatchRecords = obs.Default().Histogram("irtl_parallel_batch_records",
		"Records per dispatched batch.",
		[]float64{1, 4, 16, 64, 128, 256, 512, 1024})
	obsParMergeWait = obs.Default().Histogram("irtl_parallel_merge_wait_seconds",
		"Feeder wait at the EndDay barrier, from first flush to last shard handoff.", nil)
	obsParMerge = obs.Default().Histogram("irtl_parallel_merge_seconds",
		"Time to merge all shard accumulators into the master at a barrier.", nil)
)

// NewParallelPipeline returns a running sharded pipeline. Close must be
// called to stop the shard goroutines (Close also performs a final merge).
func NewParallelPipeline(cfg ParallelConfig) *ParallelPipeline {
	cfg = cfg.withDefaults()
	pp := &ParallelPipeline{
		Acc:         core.NewAccumulator(),
		CensusByDay: make(map[core.Date]rib.Census),
		shards:      make([]*shard, cfg.Shards),
		batches:     make([][]shardRec, cfg.Shards),
		batchSize:   cfg.BatchSize,
		peaks:       make(map[core.Date]*peakTrack),
	}
	obsParShards.SetInt(int64(cfg.Shards))
	for i := range pp.shards {
		sh := &shard{
			cls:   core.NewClassifier(),
			acc:   core.NewAccumulator(),
			table: rib.New(0),
			in:    make(chan shardMsg, cfg.Queue),
			done:  make(chan struct{}),
		}
		pp.shards[i] = sh
		// Queue depth is read at exposition time, so a scrape during a
		// replay shows where backpressure sits without touching the feeder.
		obs.Default().GaugeFunc("irtl_parallel_queue_depth",
			"Batches queued per pipeline shard.",
			func() float64 { return float64(len(sh.in)) },
			obs.L("shard", strconv.Itoa(i)))
		go sh.run(pp)
	}
	return pp
}

// run is the shard worker loop. It owns the shard's classifier, accumulator,
// and RIB partition exclusively between barriers. pp.Events is read here
// per event: the write in the feeder happens before the first batch send,
// which happens before this read, so the hook may be assigned any time up
// to the first Feed.
func (sh *shard) run(pp *ParallelPipeline) {
	defer close(sh.done)
	for msg := range sh.in {
		if msg.recs != nil {
			for i := range msg.recs {
				sr := &msg.recs[i]
				if sr.classify {
					ev := sh.cls.Classify(sr.rec)
					sh.acc.Add(ev)
					if pp.Events != nil {
						pp.Events(ev)
					}
				}
				if sr.table {
					peer := rib.PeerID{AS: sr.rec.PeerAS, ID: sr.rec.PeerAddr}
					switch sr.rec.Type {
					case collector.Announce:
						sh.table.Update(peer, sr.rec.Prefix, sr.rec.Attrs)
					case collector.Withdraw:
						sh.table.Withdraw(peer, sr.rec.Prefix)
					}
				}
			}
			batchPool.Put(msg.recs[:0])
			continue
		}
		req := msg.barrier
		if req.snapshot {
			sh.acc.EndDay(sh.cls, req.day)
		}
		h := shardHandoff{acc: sh.acc}
		if req.census {
			h.census = sh.table.TakePartialCensus()
		}
		sh.acc = core.NewAccumulator()
		req.out <- h
	}
}

// batchPool recycles routed-record batch slices between the feeder and the
// shard workers, so steady-state feeding allocates nothing per batch.
var batchPool = sync.Pool{New: func() any { return []shardRec(nil) }}

func getBatch(n int) []shardRec {
	b := batchPool.Get().([]shardRec)
	if cap(b) < n {
		b = make([]shardRec, 0, n)
	}
	return b
}

// Feed routes one record to its shard(s). Results become visible in Acc at
// the next EndDay or Close barrier.
func (pp *ParallelPipeline) Feed(rec collector.Record) {
	pp.trackPeak(rec)
	n := len(pp.shards)
	cs := core.ShardOf(rec, n)
	sr := shardRec{rec: rec, classify: true}
	rs := -1
	if rec.Type == collector.Announce || rec.Type == collector.Withdraw {
		rs = core.PrefixShardOf(rec.Prefix, n)
		if rs == cs {
			sr.table = true
		}
	}
	pp.route(cs, sr)
	if rs >= 0 && rs != cs {
		pp.route(rs, shardRec{rec: rec, table: true})
	}
}

// FeedBatch routes a slice of records; it is Feed amortized over the loop.
func (pp *ParallelPipeline) FeedBatch(recs []collector.Record) {
	for _, rec := range recs {
		pp.Feed(rec)
	}
}

// route appends one routed record to shard i's pending batch, dispatching
// the batch when full.
func (pp *ParallelPipeline) route(i int, sr shardRec) {
	if pp.batches[i] == nil {
		pp.batches[i] = getBatch(pp.batchSize)
	}
	pp.batches[i] = append(pp.batches[i], sr)
	if len(pp.batches[i]) >= pp.batchSize {
		pp.dispatch(i)
	}
}

// dispatch hands shard i's pending batch to its channel.
func (pp *ParallelPipeline) dispatch(i int) {
	b := pp.batches[i]
	if len(b) == 0 {
		return
	}
	obsParBatches.Inc()
	obsParBatchRecords.Observe(float64(len(b)))
	pp.batches[i] = nil
	pp.shards[i].in <- shardMsg{recs: b}
}

// Flush dispatches all partially filled batches without a barrier.
func (pp *ParallelPipeline) Flush() {
	for i := range pp.shards {
		pp.dispatch(i)
	}
}

// trackPeak maintains the exact per-day peak-second count on the undivided
// stream (see peakTrack).
func (pp *ParallelPipeline) trackPeak(rec collector.Record) {
	sec := rec.Time.Unix()
	d := core.DateOf(rec.Time)
	pk := pp.peaks[d]
	if pk == nil {
		pk = &peakTrack{}
		pp.peaks[d] = pk
	}
	if sec != pk.curSec {
		pk.curSec, pk.cur = sec, 0
	}
	pk.cur++
	if pk.cur > pk.peak {
		pk.peak = pk.cur
	}
}

// barrier flushes pending batches, collects every shard's accumulator (and
// optionally EndDay snapshot + census), merges them into Acc, and patches
// the exact peak-second counts.
func (pp *ParallelPipeline) barrier(day core.Date, snapshot, census bool) []rib.PartialCensus {
	pp.Flush()
	t0 := time.Now()
	out := make(chan shardHandoff, len(pp.shards))
	req := &barrierReq{day: day, snapshot: snapshot, census: census, out: out}
	for _, sh := range pp.shards {
		sh.in <- shardMsg{barrier: req}
	}
	handoffs := make([]shardHandoff, 0, len(pp.shards))
	for range pp.shards {
		handoffs = append(handoffs, <-out)
	}
	obsParMergeWait.ObserveSince(t0)
	t1 := time.Now()
	var parts []rib.PartialCensus
	for _, h := range handoffs {
		pp.Acc.Merge(h.acc)
		if census {
			parts = append(parts, h.census)
		}
	}
	for d, pk := range pp.peaks {
		if ds := pp.Acc.Days[d]; ds != nil {
			ds.PeakSecond = pk.peak
		}
	}
	obsParMerge.ObserveSince(t1)
	return parts
}

// EndDay is the serial Pipeline.EndDay made into a barrier: all shards
// flush, snapshot their routing-table shares for date, and surrender their
// day statistics, which are merged so that Acc and CensusByDay match the
// serial pipeline bit for bit.
func (pp *ParallelPipeline) EndDay(date core.Date) {
	parts := pp.barrier(date, true, true)
	pp.CensusByDay[date] = rib.MergeCensuses(parts...)
	if pp.DayEnd != nil {
		pp.DayEnd(date)
	}
}

// Sync flushes and merges without taking a day snapshot, making Acc current
// with everything fed so far.
func (pp *ParallelPipeline) Sync() {
	pp.barrier(0, false, false)
}

// Close merges any remaining shard state and stops the shard goroutines.
// The pipeline must not be fed after Close.
func (pp *ParallelPipeline) Close() {
	if pp.closed {
		return
	}
	pp.closed = true
	pp.Sync()
	for _, sh := range pp.shards {
		close(sh.in)
	}
	for _, sh := range pp.shards {
		<-sh.done
	}
}

// TotalActive returns the number of (peer, prefix) pairs currently announced
// across all shards' classifiers. Unlike the merged statistics it reads live
// shard state, so call it only at a quiescent point (after EndDay/Sync).
func (pp *ParallelPipeline) TotalActive() int {
	n := 0
	for _, sh := range pp.shards {
		n += sh.cls.TotalActive()
	}
	return n
}

// Census merges a table census over all shards' RIB partitions — the
// parallel equivalent of Pipeline.Table.TakeCensus(). Like TotalActive it
// reads live shard state, so call it only at a quiescent point (after
// EndDay, Sync, or Close).
func (pp *ParallelPipeline) Census() rib.Census {
	parts := make([]rib.PartialCensus, 0, len(pp.shards))
	for _, sh := range pp.shards {
		parts = append(parts, sh.table.TakePartialCensus())
	}
	return rib.MergeCensuses(parts...)
}

// RunScenarioParallel is RunScenario over a sharded pipeline: the generated
// stream is fed through pp with a day barrier at each day end. The caller
// still owns pp and should Close it when done feeding.
func RunScenarioParallel(cfg workload.Config, pp *ParallelPipeline) (workload.Stats, *workload.Generator, error) {
	g, err := workload.New(cfg)
	if err != nil {
		return workload.Stats{}, nil, err
	}
	stats := g.Run(
		func(rec collector.Record) { pp.Feed(rec) },
		func(day int, end time.Time) { pp.EndDay(core.DateOf(end.Add(-time.Second))) },
	)
	return stats, g, nil
}

// ClassifyLogParallel is ClassifyLog over a sharded pipeline: records stream
// through pp with a barrier at each date boundary. It returns the number of
// records read. The caller still owns pp and should Close it when done.
func ClassifyLogParallel(r collector.RecordReader, pp *ParallelPipeline) (int, error) {
	n := 0
	var cur core.Date
	haveDay := false
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		d := core.DateOf(rec.Time)
		if haveDay && d != cur {
			pp.EndDay(cur)
		}
		cur, haveDay = d, true
		pp.Feed(rec)
		n++
	}
	if haveDay {
		pp.EndDay(cur)
	}
	return n, nil
}
