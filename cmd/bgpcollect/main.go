// Bgpcollect is a route-server collector speaking real BGP-4 over TCP: it
// listens for peering sessions, completes the OPEN/KEEPALIVE handshake, and
// logs every received update in collector format — a minimal Routing Arbiter
// route server.
//
// Usage:
//
//	bgpcollect -listen :1790 -as 6000 -id 198.32.186.250 -out live.irtl.gz
//
// Point any BGP speaker at the listen port; stop with SIGINT. The -maxconns
// flag (default unlimited) makes the collector exit after that many sessions
// close, which keeps scripted runs bounded.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
	"instability/internal/session"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpcollect: ")
	var (
		listen   = flag.String("listen", ":1790", "TCP listen address")
		asn      = flag.Uint("as", 6000, "local AS number")
		id       = flag.String("id", "198.32.186.250", "local BGP identifier")
		out      = flag.String("out", "collected.irtl.gz", "output log file")
		exchName = flag.String("exchange", "live", "exchange name recorded in the log header")
		hold     = flag.Duration("hold", 90*time.Second, "proposed hold time")
		maxConns = flag.Int("maxconns", 0, "exit after this many sessions close (0 = run until SIGINT)")
	)
	flag.Parse()

	localID, err := netaddr.ParseAddr(*id)
	if err != nil {
		log.Fatal(err)
	}
	w, err := collector.Create(*out, *exchName)
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex // serializes log writes across sessions
	writeRec := func(rec collector.Record) {
		mu.Lock()
		defer mu.Unlock()
		if err := w.Write(rec); err != nil {
			log.Printf("write: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s as AS%d/%s, logging to %s", ln.Addr(), *asn, localID, *out)

	done := make(chan struct{})
	closed := make(chan struct{}, 128)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		n := 0
		for {
			select {
			case <-sig:
				close(done)
				ln.Close()
				return
			case <-closed:
				n++
				if *maxConns > 0 && n >= *maxConns {
					close(done)
					ln.Close()
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() { closed <- struct{}{} }()
			serve(conn, bgp.ASN(*asn), localID, *hold, writeRec)
		}(conn)
	}
	wg.Wait()
	<-done
	mu.Lock()
	defer mu.Unlock()
	if err := w.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	fmt.Printf("logged %d records to %s\n", w.Count(), *out)
}

// serve runs one peering session over an accepted connection.
func serve(conn net.Conn, localAS bgp.ASN, localID netaddr.Addr, hold time.Duration, writeRec func(collector.Record)) {
	remote := conn.RemoteAddr()
	var peerAS bgp.ASN
	var peerID netaddr.Addr
	var r *session.Runner
	cb := session.Callbacks{
		Established: func() {
			peerAS, peerID = r.Peer().PeerAS(), r.Peer().PeerID()
			log.Printf("session with %v established (AS%d, id %v)", remote, peerAS, peerID)
			writeRec(collector.Record{Time: time.Now().UTC(), Type: collector.SessionUp, PeerAS: peerAS, PeerAddr: peerID})
		},
		Down: func(err error) {
			log.Printf("session with %v down: %v", remote, err)
			writeRec(collector.Record{Time: time.Now().UTC(), Type: collector.SessionDown, PeerAS: peerAS, PeerAddr: peerID})
		},
		Update: func(u bgp.Update) {
			now := time.Now().UTC()
			for _, p := range u.Withdrawn {
				writeRec(collector.Record{Time: now, Type: collector.Withdraw, PeerAS: peerAS, PeerAddr: peerID, Prefix: p})
			}
			for _, p := range u.Announced {
				writeRec(collector.Record{Time: now, Type: collector.Announce, PeerAS: peerAS, PeerAddr: peerID, Prefix: p, Attrs: u.Attrs})
			}
		},
	}
	r = session.NewRunner(session.Config{
		LocalAS:  localAS,
		LocalID:  localID,
		HoldTime: hold,
		MRAI:     0,
	}, conn, cb)
	if err := r.Run(); err != nil {
		log.Printf("session with %v ended: %v", remote, err)
	}
}
