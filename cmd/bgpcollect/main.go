// Bgpcollect is a route-server collector speaking real BGP-4 over TCP: it
// listens for peering sessions, completes the OPEN/KEEPALIVE handshake, and
// logs every received update in collector format — a minimal Routing Arbiter
// route server. With -store it also writes through to an irtlstore, so the
// collected stream is immediately queryable with bgpstore/bgpanalyze.
//
// Usage:
//
//	bgpcollect -listen :1790 -as 6000 -id 198.32.186.250 -out live.irtl.gz
//	bgpcollect -listen :1790 -out live.irtl.gz -store livedb
//	bgpcollect -dial rs1:179,rs2:179 -backoff-base 1s -backoff-max 2m
//
// Point any BGP speaker at the listen port; stop with SIGINT. The -maxconns
// flag (default unlimited) makes the collector exit after that many sessions
// close, which keeps scripted runs bounded.
//
// With -dial the collector also opens outbound peering sessions and keeps
// them alive: a failed dial or dropped session is retried under jittered
// exponential backoff (-backoff-base up to -backoff-max, reset after each
// successful establishment) so a flapping route server is never hammered in
// lockstep. The -chaos flag wraps dialed connections in seeded random delays
// and resets, for battering the dial/backoff path against a healthy peer.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/faults"
	"instability/internal/intern"
	"instability/internal/netaddr"
	"instability/internal/obs"
	"instability/internal/session"
	"instability/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpcollect: ")
	var (
		listen      = flag.String("listen", ":1790", "TCP listen address")
		asn         = flag.Uint("as", 6000, "local AS number")
		id          = flag.String("id", "198.32.186.250", "local BGP identifier")
		out         = flag.String("out", "collected.irtl.gz", "output log file")
		storeDir    = flag.String("store", "", "also write through to an irtlstore at this directory")
		sealWorkers = flag.Int("seal-workers", runtime.GOMAXPROCS(0), "block encode/compress workers for store seals (1 = serial)")
		exchName    = flag.String("exchange", "live", "exchange name recorded in the log header")
		hold        = flag.Duration("hold", 90*time.Second, "proposed hold time")
		maxConns    = flag.Int("maxconns", 0, "exit after this many sessions close (0 = run until SIGINT)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /varz, /healthz, /debug/pprof on this address")
		report      = flag.Duration("report", 10*time.Second, "period of the one-line self-report (0 disables)")
		dial        = flag.String("dial", "", "comma-separated peer addresses to dial and keep sessions with")
		backoffBase = flag.Duration("backoff-base", 500*time.Millisecond, "first redial delay")
		backoffMax  = flag.Duration("backoff-max", time.Minute, "redial delay cap")
		chaosSpec   = flag.String("chaos", "", "fault dialed connections, e.g. seed=1,resetp=0.01,maxdelay=5ms")
		traceSample = flag.Float64("trace-sample", 0, "head-sample fraction of traces for /debug/traces (0 = off)")
	)
	flag.Parse()
	if *traceSample > 0 {
		obs.EnableTracing(obs.TraceConfig{SampleRate: *traceSample})
	}
	chaosConn, err := parseConnChaos(*chaosSpec)
	if err != nil {
		log.Fatal(err)
	}

	reg := obs.Default()
	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics", msrv.Addr())
	}
	var (
		obsSessionsTotal = reg.Counter("irtl_collect_sessions_total", "Peering sessions accepted.")
		obsSessionsOpen  = reg.Gauge("irtl_collect_sessions_open", "Peering sessions currently open.")
		obsWriteErrors   = reg.Counter("irtl_collect_write_errors_total", "Record sink write failures.")
		obsIngestLag     = reg.Gauge("irtl_collect_ingest_lag_seconds",
			"Age of the most recently ingested record (now - record timestamp).")
		obsRecords = func(t collector.RecType) *obs.Counter {
			return reg.Counter("irtl_collect_records_total", "Records ingested, by type.", obs.L("type", t.String()))
		}
		recA    = obsRecords(collector.Announce)
		recW    = obsRecords(collector.Withdraw)
		recUp   = obsRecords(collector.SessionUp)
		recDown = obsRecords(collector.SessionDown)
	)

	localID, err := netaddr.ParseAddr(*id)
	if err != nil {
		log.Fatal(err)
	}
	w, err := collector.Create(*out, *exchName)
	if err != nil {
		log.Fatal(err)
	}
	var db *store.Store
	if *storeDir != "" {
		if db, err = store.Open(*storeDir, store.Options{AutoSealRecords: 1 << 16, SealWorkers: *sealWorkers}); err != nil {
			log.Fatal(err)
		}
	}

	// Live classification: every ingested record streams through the
	// taxonomy classifier, so the per-class counters on /metrics move in
	// real time during collection.
	classifier := core.NewClassifier()
	acc := core.NewAccumulator()
	acc.Register(reg)

	var mu sync.Mutex // serializes sink writes across sessions
	writeRec := func(rec collector.Record) {
		mu.Lock()
		defer mu.Unlock()
		if err := w.Write(rec); err != nil {
			obsWriteErrors.Inc()
			log.Printf("write: %v", err)
		}
		if db != nil {
			if err := db.Writer().Append(rec); err != nil {
				obsWriteErrors.Inc()
				log.Printf("store append: %v", err)
			}
		}
		acc.Add(classifier.Classify(rec))
		switch rec.Type {
		case collector.Announce:
			recA.Inc()
		case collector.Withdraw:
			recW.Inc()
		case collector.SessionUp:
			recUp.Inc()
		case collector.SessionDown:
			recDown.Inc()
		}
		obsIngestLag.Set(time.Since(rec.Time).Seconds())
	}
	// closeSinks runs exactly once, no matter how shutdown is reached.
	var closeOnce sync.Once
	closeSinks := func() {
		closeOnce.Do(func() {
			mu.Lock()
			defer mu.Unlock()
			if err := w.Close(); err != nil {
				log.Printf("close: %v", err)
			}
			if db != nil {
				if err := db.Close(); err != nil {
					log.Printf("store close: %v", err)
				}
			}
		})
	}

	// Install the signal handler before the listener exists, so a SIGINT
	// arriving during startup is never lost and always runs the shutdown
	// path below.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s as AS%d/%s, logging to %s", ln.Addr(), *asn, localID, *out)

	// Periodic self-report, read back from the registry: the counters the
	// instrumentation already maintains are the single source of truth.
	reportDone := make(chan struct{})
	if *report > 0 {
		go func() {
			tick := time.NewTicker(*report)
			defer tick.Stop()
			lastN, lastT := 0.0, time.Now()
			for {
				select {
				case <-reportDone:
					return
				case <-tick.C:
				}
				n := reg.Sum("irtl_collect_records_total")
				now := time.Now()
				rate := (n - lastN) / now.Sub(lastT).Seconds()
				lastN, lastT = n, now
				log.Printf("ingested %.0f records (%.1f/s), %.0f drops, %.0f sessions open, lag %.2fs",
					n,
					rate,
					reg.Value("irtl_collect_write_errors_total")+reg.Value("irtl_session_queue_drops_total"),
					reg.Value("irtl_collect_sessions_open"),
					reg.Value("irtl_collect_ingest_lag_seconds"))
			}
		}()
	}

	// Track live connections so stop can sever them: without this, a peer
	// that never hangs up would stall wg.Wait() after SIGINT and the sinks
	// would never be closed.
	var connMu sync.Mutex
	conns := make(map[net.Conn]bool)
	stopping := false

	// stop closes the listener and live sessions exactly once; SIGINT, the
	// -maxconns budget, and dial-loop teardown all funnel through it.
	stopped := make(chan struct{}) // closed by stop; unblocks backoff sleeps
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			close(stopped)
			ln.Close()
			connMu.Lock()
			stopping = true
			for c := range conns {
				c.Close()
			}
			connMu.Unlock()
		})
	}
	go func() {
		<-sigc
		stop()
	}()

	var sessionsClosed atomic.Int64
	var wg sync.WaitGroup

	// track registers a live connection; the returned release deregisters it
	// and spends one unit of the -maxconns budget. ok=false means the
	// collector is already stopping and the conn has been closed.
	track := func(conn net.Conn) (release func(), ok bool) {
		connMu.Lock()
		if stopping {
			connMu.Unlock()
			conn.Close()
			return nil, false
		}
		conns[conn] = true
		connMu.Unlock()
		obsSessionsTotal.Inc()
		obsSessionsOpen.Inc()
		return func() {
			connMu.Lock()
			delete(conns, conn)
			connMu.Unlock()
			obsSessionsOpen.Dec()
			if n := sessionsClosed.Add(1); *maxConns > 0 && n >= int64(*maxConns) {
				stop()
			}
		}, true
	}

	// Outbound sessions: one dial loop per -dial address, each with its own
	// jittered exponential backoff so redials against a flapping peer are
	// paced and decorrelated. A successful establishment resets the schedule.
	for i, addr := range strings.Split(*dial, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			bo := session.Backoff{Base: *backoffBase, Max: *backoffMax}
			for attempt := 0; ; attempt++ {
				conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
				if err != nil {
					log.Printf("dial %s: %v", addr, err)
				} else {
					if chaosConn != nil {
						conn = chaosConn(conn, int64(i)<<16|int64(attempt))
					}
					release, ok := track(conn)
					if !ok {
						return
					}
					serve(conn, bgp.ASN(*asn), localID, *hold, writeRec, bo.Reset)
					release()
				}
				select {
				case <-stopped:
					return
				case <-time.After(bo.Next()):
				}
			}
		}(i, addr)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		release, ok := track(conn)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(conn net.Conn, release func()) {
			defer wg.Done()
			defer release()
			serve(conn, bgp.ASN(*asn), localID, *hold, writeRec, nil)
		}(conn, release)
	}
	wg.Wait()
	close(reportDone)
	closeSinks()
	fmt.Printf("logged %d records to %s\n", w.Count(), *out)
	if db != nil {
		st := db.Stats()
		fmt.Printf("store %s: %d records in %d segments\n", *storeDir, st.Records, st.Segments)
	}
	if hits, misses, _ := intern.Stats(); hits+misses > 0 {
		fmt.Printf("attr intern: %.1f%% hit rate (%d lookups, %d unique tuples)\n",
			100*float64(hits)/float64(hits+misses), hits+misses, misses)
	}
	if tot := acc.TotalCounts(); acc.TotalEvents() > 0 {
		var parts []string
		for _, c := range core.Classes() {
			if tot[c] > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", c, tot[c]))
			}
		}
		fmt.Printf("classified: %s\n", strings.Join(parts, ", "))
	}
}

// serve runs one peering session over an accepted or dialed connection.
// onEstablished, when non-nil, is called after the session reaches
// Established (the dial loops hang their backoff reset on it).
func serve(conn net.Conn, localAS bgp.ASN, localID netaddr.Addr, hold time.Duration, writeRec func(collector.Record), onEstablished func()) {
	remote := conn.RemoteAddr()
	var peerAS bgp.ASN
	var peerID netaddr.Addr
	var r *session.Runner
	cb := session.Callbacks{
		Established: func() {
			peerAS, peerID = r.Peer().PeerAS(), r.Peer().PeerID()
			log.Printf("session with %v established (AS%d, id %v)", remote, peerAS, peerID)
			writeRec(collector.Record{Time: time.Now().UTC(), Type: collector.SessionUp, PeerAS: peerAS, PeerAddr: peerID})
			if onEstablished != nil {
				onEstablished()
			}
		},
		Down: func(err error) {
			log.Printf("session with %v down: %v", remote, err)
			writeRec(collector.Record{Time: time.Now().UTC(), Type: collector.SessionDown, PeerAS: peerAS, PeerAddr: peerID})
		},
		Update: func(u bgp.Update) {
			now := time.Now().UTC()
			for _, p := range u.Withdrawn {
				writeRec(collector.Record{Time: now, Type: collector.Withdraw, PeerAS: peerAS, PeerAddr: peerID, Prefix: p})
			}
			for _, p := range u.Announced {
				writeRec(collector.Record{Time: now, Type: collector.Announce, PeerAS: peerAS, PeerAddr: peerID, Prefix: p, Attrs: u.Attrs})
			}
		},
	}
	r = session.NewRunner(session.Config{
		LocalAS:  localAS,
		LocalID:  localID,
		HoldTime: hold,
		MRAI:     0,
	}, conn, cb)
	if err := r.Run(); err != nil {
		log.Printf("session with %v ended: %v", remote, err)
	}
}

// parseConnChaos parses the -chaos spec into a per-connection wrapper. Keys:
// seed (base RNG seed), resetp (per-op spontaneous close probability),
// maxdelay (uniform random pre-op delay). The per-connection salt keeps every
// dialed conn on its own deterministic schedule.
func parseConnChaos(spec string) (func(c net.Conn, salt int64) net.Conn, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var (
		seed     int64
		resetP   float64
		maxDelay time.Duration
	)
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -chaos element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			seed, err = strconv.ParseInt(v, 10, 64)
		case "resetp":
			resetP, err = strconv.ParseFloat(v, 64)
		case "maxdelay":
			maxDelay, err = time.ParseDuration(v)
		default:
			return nil, fmt.Errorf("unknown -chaos key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("bad -chaos value %q: %v", kv, err)
		}
	}
	return func(c net.Conn, salt int64) net.Conn {
		return faults.NewConn(c, seed^salt, resetP, maxDelay)
	}, nil
}
