// Bgpcollect is a route-server collector speaking real BGP-4 over TCP: it
// listens for peering sessions, completes the OPEN/KEEPALIVE handshake, and
// logs every received update in collector format — a minimal Routing Arbiter
// route server. With -store it also writes through to an irtlstore, so the
// collected stream is immediately queryable with bgpstore/bgpanalyze.
//
// Usage:
//
//	bgpcollect -listen :1790 -as 6000 -id 198.32.186.250 -out live.irtl.gz
//	bgpcollect -listen :1790 -out live.irtl.gz -store livedb
//
// Point any BGP speaker at the listen port; stop with SIGINT. The -maxconns
// flag (default unlimited) makes the collector exit after that many sessions
// close, which keeps scripted runs bounded.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/netaddr"
	"instability/internal/session"
	"instability/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpcollect: ")
	var (
		listen   = flag.String("listen", ":1790", "TCP listen address")
		asn      = flag.Uint("as", 6000, "local AS number")
		id       = flag.String("id", "198.32.186.250", "local BGP identifier")
		out      = flag.String("out", "collected.irtl.gz", "output log file")
		storeDir = flag.String("store", "", "also write through to an irtlstore at this directory")
		exchName = flag.String("exchange", "live", "exchange name recorded in the log header")
		hold     = flag.Duration("hold", 90*time.Second, "proposed hold time")
		maxConns = flag.Int("maxconns", 0, "exit after this many sessions close (0 = run until SIGINT)")
	)
	flag.Parse()

	localID, err := netaddr.ParseAddr(*id)
	if err != nil {
		log.Fatal(err)
	}
	w, err := collector.Create(*out, *exchName)
	if err != nil {
		log.Fatal(err)
	}
	var db *store.Store
	if *storeDir != "" {
		if db, err = store.Open(*storeDir, store.Options{AutoSealRecords: 1 << 16}); err != nil {
			log.Fatal(err)
		}
	}

	var mu sync.Mutex // serializes sink writes across sessions
	writeRec := func(rec collector.Record) {
		mu.Lock()
		defer mu.Unlock()
		if err := w.Write(rec); err != nil {
			log.Printf("write: %v", err)
		}
		if db != nil {
			if err := db.Writer().Append(rec); err != nil {
				log.Printf("store append: %v", err)
			}
		}
	}
	// closeSinks runs exactly once, no matter how shutdown is reached.
	var closeOnce sync.Once
	closeSinks := func() {
		closeOnce.Do(func() {
			mu.Lock()
			defer mu.Unlock()
			if err := w.Close(); err != nil {
				log.Printf("close: %v", err)
			}
			if db != nil {
				if err := db.Close(); err != nil {
					log.Printf("store close: %v", err)
				}
			}
		})
	}

	// Install the signal handler before the listener exists, so a SIGINT
	// arriving during startup is never lost and always runs the shutdown
	// path below.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s as AS%d/%s, logging to %s", ln.Addr(), *asn, localID, *out)

	// Track live connections so stop can sever them: without this, a peer
	// that never hangs up would stall wg.Wait() after SIGINT and the sinks
	// would never be closed.
	var connMu sync.Mutex
	conns := make(map[net.Conn]bool)
	stopping := false

	// stop closes the listener and live sessions exactly once; both SIGINT
	// and the -maxconns budget funnel through it.
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			ln.Close()
			connMu.Lock()
			stopping = true
			for c := range conns {
				c.Close()
			}
			connMu.Unlock()
		})
	}
	go func() {
		<-sigc
		stop()
	}()

	var sessionsClosed atomic.Int64
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		connMu.Lock()
		if stopping {
			connMu.Unlock()
			conn.Close()
			continue
		}
		conns[conn] = true
		connMu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() {
				connMu.Lock()
				delete(conns, conn)
				connMu.Unlock()
				if n := sessionsClosed.Add(1); *maxConns > 0 && n >= int64(*maxConns) {
					stop()
				}
			}()
			serve(conn, bgp.ASN(*asn), localID, *hold, writeRec)
		}(conn)
	}
	wg.Wait()
	closeSinks()
	fmt.Printf("logged %d records to %s\n", w.Count(), *out)
	if db != nil {
		st := db.Stats()
		fmt.Printf("store %s: %d records in %d segments\n", *storeDir, st.Records, st.Segments)
	}
}

// serve runs one peering session over an accepted connection.
func serve(conn net.Conn, localAS bgp.ASN, localID netaddr.Addr, hold time.Duration, writeRec func(collector.Record)) {
	remote := conn.RemoteAddr()
	var peerAS bgp.ASN
	var peerID netaddr.Addr
	var r *session.Runner
	cb := session.Callbacks{
		Established: func() {
			peerAS, peerID = r.Peer().PeerAS(), r.Peer().PeerID()
			log.Printf("session with %v established (AS%d, id %v)", remote, peerAS, peerID)
			writeRec(collector.Record{Time: time.Now().UTC(), Type: collector.SessionUp, PeerAS: peerAS, PeerAddr: peerID})
		},
		Down: func(err error) {
			log.Printf("session with %v down: %v", remote, err)
			writeRec(collector.Record{Time: time.Now().UTC(), Type: collector.SessionDown, PeerAS: peerAS, PeerAddr: peerID})
		},
		Update: func(u bgp.Update) {
			now := time.Now().UTC()
			for _, p := range u.Withdrawn {
				writeRec(collector.Record{Time: now, Type: collector.Withdraw, PeerAS: peerAS, PeerAddr: peerID, Prefix: p})
			}
			for _, p := range u.Announced {
				writeRec(collector.Record{Time: now, Type: collector.Announce, PeerAS: peerAS, PeerAddr: peerID, Prefix: p, Attrs: u.Attrs})
			}
		},
	}
	r = session.NewRunner(session.Config{
		LocalAS:  localAS,
		LocalID:  localID,
		HoldTime: hold,
		MRAI:     0,
	}, conn, cb)
	if err := r.Run(); err != nil {
		log.Printf("session with %v ended: %v", remote, err)
	}
}
