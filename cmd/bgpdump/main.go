// Bgpdump prints a collector log in a human-readable, line-per-record form,
// in the spirit of the classic MRT dump tools. Filters select a peer AS, a
// prefix (exact or covering), a record type, or a time window.
//
// Usage:
//
//	bgpdump -in maeeast.irtl.gz
//	bgpdump -in maeeast.irtl.gz -type W -peer 701
//	bgpdump -in maeeast.irtl.gz -prefix 192.42.113.0/24 -within
//	bgpdump -in maeeast.irtl.gz -from "1996-05-25 00:00" -to "1996-05-25 00:02"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"instability/internal/collector"
	"instability/internal/netaddr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpdump: ")
	var (
		in      = flag.String("in", "", "input log file")
		peer    = flag.Uint("peer", 0, "only records from this peer AS")
		prefix  = flag.String("prefix", "", "only records for this prefix")
		within  = flag.Bool("within", false, "with -prefix: match any prefix inside the block")
		typ     = flag.String("type", "", "only this record type: A, W, UP, DOWN")
		from    = flag.String("from", "", `start of time window ("2006-01-02 15:04")`)
		to      = flag.String("to", "", "end of time window")
		countIt = flag.Bool("c", false, "print only the matching record count")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -in")
	}

	var pfx netaddr.Prefix
	havePfx := false
	if *prefix != "" {
		var err error
		pfx, err = netaddr.ParsePrefix(*prefix)
		if err != nil {
			log.Fatal(err)
		}
		havePfx = true
	}
	parseTime := func(s string) time.Time {
		if s == "" {
			return time.Time{}
		}
		t, err := time.Parse("2006-01-02 15:04", s)
		if err != nil {
			log.Fatalf("bad time %q: %v", s, err)
		}
		return t
	}
	fromT, toT := parseTime(*from), parseTime(*to)

	r, _, err := collector.OpenAny(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	matched := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if *peer != 0 && uint(rec.PeerAS) != *peer {
			continue
		}
		if *typ != "" && rec.Type.String() != *typ {
			continue
		}
		if havePfx {
			if *within {
				if !pfx.ContainsPrefix(rec.Prefix) {
					continue
				}
			} else if rec.Prefix != pfx {
				continue
			}
		}
		if !fromT.IsZero() && rec.Time.Before(fromT) {
			continue
		}
		if !toT.IsZero() && !rec.Time.Before(toT) {
			continue
		}
		matched++
		if !*countIt {
			fmt.Fprintln(w, rec.String())
		}
	}
	if *countIt {
		fmt.Fprintln(w, matched)
	}
}
