// Bgpreplay replays a recorded update log as a live BGP speaker: it dials a
// collector (such as bgpcollect), completes the OPEN handshake, and re-sends
// the log's announcements and withdrawals over TCP with their original
// relative timing (optionally compressed). Together with bgpsim and
// bgpcollect this closes the loop: synthesize a campaign, replay it as real
// protocol traffic, collect it again, and analyze the result.
//
// Usage:
//
//	bgpreplay -in maeeast.irtl.gz -connect 127.0.0.1:1790 -speedup 600
//	bgpreplay -in maeeast.irtl.gz -connect 127.0.0.1:1790 -peer 690 -as 690
//	bgpreplay -store db -from 1996-05-01 -to 1996-05-08 -origin 237 -connect 127.0.0.1:1790
//	bgpreplay -in attack.irtl.gz -connect 127.0.0.1:1790 -detect
//
// With -store the input is an irtlstore query instead of a flat log: the
// store's indexes select the slice (time window, peer, origin, prefix) and
// only that slice is decompressed and replayed.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"instability"
	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/detect"
	"instability/internal/intern"
	"instability/internal/netaddr"
	"instability/internal/obs"
	"instability/internal/session"
	"instability/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpreplay: ")
	var (
		in          = flag.String("in", "", "input log (native or MRT)")
		storeDir    = flag.String("store", "", "replay from an irtlstore query instead of a log file")
		from        = flag.String("from", "", "store query: start time (inclusive)")
		to          = flag.String("to", "", "store query: end time (exclusive)")
		origin      = flag.String("origin", "", "store query: comma-separated origin AS list")
		prefix      = flag.String("prefix", "", "store query: exact prefix (CIDR)")
		connect     = flag.String("connect", "127.0.0.1:1790", "collector address")
		asn         = flag.Uint("as", 690, "local AS number")
		id          = flag.String("id", "198.32.186.1", "local BGP identifier")
		peer        = flag.Uint("peer", 0, "replay only records from this peer AS (0 = all, rewritten to the local identity)")
		speedup     = flag.Float64("speedup", 600, "time compression factor (600 = one simulated hour per 6 wall seconds)")
		limit       = flag.Int("n", 0, "stop after this many records (0 = all)")
		stateless   = flag.Bool("stateless", false, "replay as the stateless vendor: withdrawals are sent even for never-advertised prefixes, reproducing the log's WWDups on the wire")
		detectFlag  = flag.Bool("detect", false, "classify the replayed records through the streaming anomaly detector and print its alerts at the end")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "store query: segment-scan decompression workers (1 = serial scan)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /varz, /healthz, /debug/pprof on this address")
		traceSample = flag.Float64("trace-sample", 0, "head-sample fraction of traces for /debug/traces (0 = off)")
		blockCache  = flag.Int64("block-cache-bytes", 32<<20, "store query: shared decompressed-block cache budget in bytes (0 = off)")
		noMmap      = flag.Bool("no-mmap", false, "store query: disable memory-mapped segment reads")
		sealWorkers = flag.Int("seal-workers", runtime.GOMAXPROCS(0), "store: block encode/compress workers for seals (1 = serial)")
	)
	flag.Parse()
	if *traceSample > 0 {
		obs.EnableTracing(obs.TraceConfig{SampleRate: *traceSample})
	}
	if (*in == "") == (*storeDir == "") {
		log.Fatal("need exactly one of -in or -store")
	}
	reg := obs.Default()
	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics", msrv.Addr())
	}
	obsSent := reg.Counter("irtl_replay_records_total", "Records replayed onto the wire.")
	obsPosition := reg.Gauge("irtl_replay_position_seconds",
		"Log-time position of the replay (Unix seconds of the last record sent).")
	localID, err := netaddr.ParseAddr(*id)
	if err != nil {
		log.Fatal(err)
	}

	r, src, err := openInput(*in, *storeDir, *from, *to, *origin, *prefix, *parallel, *blockCache, *noMmap, *sealWorkers)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		log.Fatal(err)
	}
	established := make(chan struct{}, 1)
	runner := session.NewRunner(session.Config{
		LocalAS:   bgp.ASN(*asn),
		LocalID:   localID,
		HoldTime:  90 * time.Second,
		MRAI:      0,
		Stateless: *stateless,
	}, conn, session.Callbacks{
		Established: func() { established <- struct{}{} },
		Down:        func(err error) { log.Printf("session down: %v", err) },
	})
	done := make(chan error, 1)
	go func() { done <- runner.Run() }()
	select {
	case <-established:
	case err := <-done:
		log.Fatalf("session never established: %v", err)
	case <-time.After(30 * time.Second):
		log.Fatal("timeout establishing session")
	}
	log.Printf("established with %s; replaying %s at %gx", *connect, src, *speedup)

	// Graceful drain: SIGINT/SIGTERM stops feeding new records but still
	// flushes what the session has buffered and closes the BGP session with a
	// NOTIFICATION instead of a TCP reset. A second signal aborts.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	interrupted := false

	// With -detect the records also flow through the classifier into the
	// anomaly detector as they go out on the wire, with day barriers at log
	// date boundaries — the same feed bgpanalyze -detect runs offline.
	var det *detect.Detector
	var dp *instability.Pipeline
	var detDay core.Date
	haveDetDay := false
	if *detectFlag {
		det = detect.New(detect.Config{})
		dp = instability.NewPipeline()
		dp.Events = det.Add
		dp.DayEnd = func(d core.Date) { det.Advance(d.Time().AddDate(0, 0, 1)) }
	}

	span := reg.StartSpan("replay")
	var sent int
	var prev time.Time
loop:
	for {
		select {
		case sig := <-sigc:
			log.Printf("%v: draining session (again to abort)", sig)
			go func() {
				<-sigc
				log.Fatal("second signal: aborting")
			}()
			interrupted = true
			break loop
		default:
		}
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if rec.Type != collector.Announce && rec.Type != collector.Withdraw {
			continue
		}
		if *peer != 0 && uint(rec.PeerAS) != *peer {
			continue
		}
		if !prev.IsZero() && *speedup > 0 {
			gap := rec.Time.Sub(prev)
			if wait := time.Duration(float64(gap) / *speedup); wait > 0 {
				if wait > 5*time.Second {
					wait = 5 * time.Second // cap idle stretches
				}
				select {
				case sig := <-sigc:
					log.Printf("%v: draining session (again to abort)", sig)
					interrupted = true
					break loop
				case <-time.After(wait):
				}
			}
		}
		prev = rec.Time
		if dp != nil {
			if d := core.DateOf(rec.Time); !haveDetDay || d != detDay {
				if haveDetDay {
					dp.EndDay(detDay)
				}
				detDay, haveDetDay = d, true
			}
			dp.Feed(rec)
		}
		runner.Do(func(p *session.Peer) {
			switch rec.Type {
			case collector.Announce:
				p.Announce(rec.Prefix, rec.Attrs)
			case collector.Withdraw:
				p.Withdraw(rec.Prefix)
			}
		})
		sent++
		obsSent.Inc()
		obsPosition.SetInt(rec.Time.Unix())
		if *limit > 0 && sent >= *limit {
			break
		}
	}
	span.Add(int64(sent))
	span.End()
	// Let the final flush drain before closing.
	time.Sleep(200 * time.Millisecond)
	runner.Close()
	<-done
	if interrupted {
		fmt.Printf("replayed %d records (interrupted)\n", sent)
	} else {
		fmt.Printf("replayed %d records\n", sent)
	}
	if hits, misses, _ := intern.Stats(); hits+misses > 0 {
		fmt.Printf("attr intern: %.1f%% hit rate (%d lookups, %d unique tuples)\n",
			100*float64(hits)/float64(hits+misses), hits+misses, misses)
	}
	if dp != nil {
		if haveDetDay {
			dp.EndDay(detDay)
		}
		alerts := det.Finish()
		fmt.Printf("detector: %d alert episodes\n", len(alerts))
		for _, a := range alerts {
			fmt.Printf("  %-6s %s peer=%d prefix=%s %s .. %s windows=%d records=%d peak=%.1f\n",
				a.Channel, a.Class, a.Peer, a.Prefix,
				a.Start.Format("2006-01-02 15:04"), a.End.Format("2006-01-02 15:04"),
				a.Windows, a.Records, a.Peak)
		}
	}
}

// openInput returns the record source: a flat log (native or MRT) for -in,
// or an indexed store query for -store. The -peer flag is applied in the
// replay loop either way, so it is not folded into the store query here;
// time, origin, and prefix predicates are pushed down to the store.
func openInput(in, storeDir, from, to, origin, prefix string, parallel int, blockCache int64, noMmap bool, sealWorkers int) (collector.RecordReader, string, error) {
	if in != "" {
		r, _, err := collector.OpenAny(in)
		return r, in, err
	}
	q, err := store.ParseQuery(from, to, "", origin, prefix, "")
	if err != nil {
		return nil, "", err
	}
	s, err := store.Open(storeDir, store.Options{BlockCacheBytes: blockCache, NoMmap: noMmap, SealWorkers: sealWorkers})
	if err != nil {
		return nil, "", err
	}
	r, err := s.QueryParallel(q, parallel)
	if err != nil {
		s.Close()
		return nil, "", err
	}
	return storeInput{r, s}, "store " + storeDir, nil
}

// storeInput keeps the store open for the life of the query reader.
type storeInput struct {
	*store.Reader
	s *store.Store
}

func (si storeInput) Close() error {
	si.Reader.Close()
	return si.s.Close()
}
