// Bgpsim runs a measurement scenario and writes the observed update stream
// as a collector log (gzip-compressed when the output name ends in .gz) —
// the synthetic stand-in for the Routing Arbiter archive.
//
// Usage:
//
//	bgpsim -out maeeast.irtl.gz -days 214 -scale paper
//	bgpsim -out week.irtl -days 7 -scale small -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"instability/internal/collector"
	"instability/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpsim: ")
	var (
		out      = flag.String("out", "updates.irtl.gz", "output log file (.gz for compression)")
		days     = flag.Int("days", 0, "override scenario length in days")
		seed     = flag.Int64("seed", 0, "override random seed")
		exchange = flag.String("exchange", "", "exchange point (Mae-East, Sprint, AADS, PacBell, Mae-West)")
		scale    = flag.String("scale", "paper", "scenario scale: paper (7 months) or small (1 week)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	var cfg workload.Config
	switch *scale {
	case "paper":
		cfg = workload.DefaultConfig()
	case "small":
		cfg = workload.SmallConfig()
	default:
		log.Fatalf("unknown -scale %q", *scale)
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *exchange != "" {
		cfg.Exchange = *exchange
	}

	g, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// ".mrt"/".mrt.gz" output selects RFC 6396 BGP4MP format for interop
	// with external tools; everything else uses the native log format.
	var write func(collector.Record) error
	var closeLog func() error
	var count func() int
	if strings.HasSuffix(*out, ".mrt") || strings.HasSuffix(*out, ".mrt.gz") {
		w, err := collector.CreateMRT(*out)
		if err != nil {
			log.Fatal(err)
		}
		write, closeLog, count = w.Write, w.Close, w.Count
	} else {
		w, err := collector.Create(*out, cfg.Exchange)
		if err != nil {
			log.Fatal(err)
		}
		write, closeLog, count = w.Write, w.Close, w.Count
	}
	start := time.Now()
	stats := g.Run(func(rec collector.Record) {
		if err := write(rec); err != nil {
			log.Fatal(err)
		}
	}, func(day int, end time.Time) {
		if !*quiet && (day+1)%30 == 0 {
			fmt.Fprintf(os.Stderr, "  ... %d/%d days, %d records\n", day+1, cfg.Days, count())
		}
	})
	if err := closeLog(); err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		fmt.Printf("wrote %d records (%d routes at %s, %d days) to %s in %v\n",
			stats.Records, g.Routes(), cfg.Exchange, stats.Days, *out, time.Since(start).Round(time.Millisecond))
	}
}
