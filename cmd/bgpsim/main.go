// Bgpsim runs a measurement scenario and writes the observed update stream
// as a collector log (gzip-compressed when the output name ends in .gz) —
// the synthetic stand-in for the Routing Arbiter archive.
//
// Usage:
//
//	bgpsim -out maeeast.irtl.gz -days 214 -scale paper
//	bgpsim -out week.irtl -days 7 -scale small -seed 7
//	bgpsim -out attack.irtl.gz -scale small -adversary hijack,worm -truth-out truth.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"instability/internal/collector"
	"instability/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpsim: ")
	var (
		out      = flag.String("out", "updates.irtl.gz", "output log file (.gz for compression)")
		days     = flag.Int("days", 0, "override scenario length in days")
		seed     = flag.Int64("seed", 0, "override random seed")
		exchange = flag.String("exchange", "", "exchange point (Mae-East, Sprint, AADS, PacBell, Mae-West)")
		scale    = flag.String("scale", "paper", "scenario scale: paper (7 months) or small (1 week)")
		advSpec  = flag.String("adversary", "", "inject adversarial scenarios on consecutive days: comma-separated hijack|leak|poison|storm|worm, or all")
		truthOut = flag.String("truth-out", "", "write the injected episodes' ground-truth intervals as JSON (for bgpanalyze -detect -truth)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	var cfg workload.Config
	switch *scale {
	case "paper":
		cfg = workload.DefaultConfig()
	case "small":
		cfg = workload.SmallConfig()
	default:
		log.Fatalf("unknown -scale %q", *scale)
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *exchange != "" {
		cfg.Exchange = *exchange
	}
	if *advSpec != "" {
		names := strings.Split(*advSpec, ",")
		if *advSpec == "all" {
			names = names[:0]
			for _, k := range workload.AdversaryScenarios {
				names = append(names, k.String())
			}
		}
		// Episodes land on consecutive days starting day 2, after the
		// detector's baselines have something to decay from (the same
		// placement as workload.AdversaryConfig).
		for i, name := range names {
			kind, err := workload.ParseScenario(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			day := 2 + i
			if day >= cfg.Days {
				log.Fatalf("-adversary %s lands on day %d but the scenario has only %d days; raise -days", name, day, cfg.Days)
			}
			mag := 1.0
			if kind == workload.WormPropagation {
				mag = 1.5
			}
			cfg.Incidents = append(cfg.Incidents, workload.Incident{
				Kind: kind, Day: day, Days: 1, Magnitude: mag,
			})
		}
	} else if *truthOut != "" {
		log.Fatal("-truth-out requires -adversary")
	}

	g, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// ".mrt"/".mrt.gz" output selects RFC 6396 BGP4MP format for interop
	// with external tools; everything else uses the native log format.
	var write func(collector.Record) error
	var closeLog func() error
	var count func() int
	if strings.HasSuffix(*out, ".mrt") || strings.HasSuffix(*out, ".mrt.gz") {
		w, err := collector.CreateMRT(*out)
		if err != nil {
			log.Fatal(err)
		}
		write, closeLog, count = w.Write, w.Close, w.Count
	} else {
		w, err := collector.Create(*out, cfg.Exchange)
		if err != nil {
			log.Fatal(err)
		}
		write, closeLog, count = w.Write, w.Close, w.Count
	}
	start := time.Now()
	stats := g.Run(func(rec collector.Record) {
		if err := write(rec); err != nil {
			log.Fatal(err)
		}
	}, func(day int, end time.Time) {
		if !*quiet && (day+1)%30 == 0 {
			fmt.Fprintf(os.Stderr, "  ... %d/%d days, %d records\n", day+1, cfg.Days, count())
		}
	})
	if err := closeLog(); err != nil {
		log.Fatal(err)
	}
	if *truthOut != "" {
		truths := g.GroundTruth()
		data, err := json.MarshalIndent(truths, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*truthOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Printf("wrote %d ground-truth intervals to %s\n", len(truths), *truthOut)
		}
	}
	if !*quiet {
		fmt.Printf("wrote %d records (%d routes at %s, %d days) to %s in %v\n",
			stats.Records, g.Routes(), cfg.Exchange, stats.Days, *out, time.Since(start).Round(time.Millisecond))
	}
}
