// Experiments regenerates every table and figure of the paper's evaluation
// from the simulated measurement campaign, plus the mechanism experiments
// behind the §4 and §6 claims (stateless-vendor fix, route flap storm,
// damping, route-server session complexity, timer self-synchronization).
//
// Usage:
//
//	experiments            # full seven-month campaign (~10-60 s)
//	experiments -quick     # five-week campaign for a fast look
//	experiments -id fig5   # one experiment only
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"instability"
	"instability/internal/analysis"
	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/damping"
	"instability/internal/events"
	"instability/internal/exchange"
	"instability/internal/igp"
	"instability/internal/netaddr"
	"instability/internal/netsim"
	"instability/internal/report"
	"instability/internal/router"
	"instability/internal/session"
	"instability/internal/synchrony"
	"instability/internal/topology"
	"instability/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		quick = flag.Bool("quick", false, "run a 5-week campaign instead of 7 months")
		id    = flag.String("id", "all", "experiment id: all, table1, fig1..fig10, volume, statefulfix, flapstorm, damping, routeserver, synchrony")
		seed  = flag.Int64("seed", 1996, "random seed")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	if *quick {
		cfg.Days = 35
		cfg.Incidents = []workload.Incident{
			{Kind: workload.PathologicalFlood, Day: 12, Magnitude: 1},
			{Kind: workload.InfrastructureUpgrade, Day: 20, Days: 4, Magnitude: 1},
			{Kind: workload.CollectorOutage, Day: 28, Magnitude: 1},
		}
	}

	needCampaign := map[string]bool{
		"all": true, "table1": true, "fig1": true, "fig2": true, "fig3": true,
		"fig4": true, "fig5": true, "fig6": true, "fig7": true, "fig8": true,
		"fig9": true, "fig10": true, "volume": true, "persistence": true,
		"usagecorr": true,
	}
	var p *instability.Pipeline
	var gen *workload.Generator
	var stats workload.Stats
	episodes := core.NewEpisodeTracker()
	if needCampaign[*id] {
		fmt.Printf("running %d-day campaign at %s (seed %d)...\n", cfg.Days, cfg.Exchange, cfg.Seed)
		start := time.Now()
		p = instability.NewPipeline()
		p.Events = episodes.Observe
		var err error
		stats, gen, err = instability.RunScenario(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		episodes.Flush()
		fmt.Printf("generated and classified %s records (%d routes) in %v\n\n",
			report.FormatCount(stats.Records), gen.Routes(), time.Since(start).Round(time.Millisecond))
	}

	floodDay := core.DateOf(cfg.Start)
	outages := map[core.Date]bool{}
	for _, inc := range cfg.Incidents {
		switch inc.Kind {
		case workload.PathologicalFlood:
			floodDay = core.DateOf(cfg.Start) + core.Date(inc.Day)
		case workload.CollectorOutage:
			days := inc.Days
			if days < 1 {
				days = 1
			}
			for d := 0; d < days; d++ {
				outages[core.DateOf(cfg.Start)+core.Date(inc.Day+d)] = true
			}
		}
	}

	run := func(name string) {
		switch name {
		case "table1":
			fmt.Println(report.Table1(p.Acc, floodDay))
		case "fig1":
			fmt.Println(report.Fig1(gen.Topology()))
		case "fig2":
			fmt.Println(report.Fig2(p.Acc))
		case "fig3":
			fmt.Println(report.Fig3(p.Acc, outages))
		case "fig4":
			dates := p.Acc.Dates()
			// A calm, complete mid-campaign week starting on a Saturday.
			weekStart := dates[len(dates)/2]
			for weekStart.Weekday() != time.Saturday {
				weekStart++
			}
			fmt.Println(report.Fig4(p.Acc, weekStart))
		case "fig5":
			fmt.Println(report.Fig5(p.Acc, cfg.Seed))
		case "fig6":
			fmt.Println(report.Fig6(p.Acc))
		case "fig7":
			fmt.Println(report.Fig7(p.Acc))
		case "fig8":
			fmt.Println(report.Fig8(p.Acc))
		case "fig9":
			fmt.Println(report.Fig9(p.Acc, outages))
		case "fig10":
			fmt.Println(report.Fig10(p.CensusByDay))
		case "volume":
			volumeClaim(p, gen)
		case "usagecorr":
			usageCorrClaim(p, cfg)
		case "persistence":
			fmt.Println("§4 persistence of instability episodes:")
			fmt.Printf("  episodes observed:        %s\n", report.FormatCount(len(episodes.Durations)))
			fmt.Printf("  median episode duration:  %v\n", episodes.MedianDuration().Round(time.Second))
			fmt.Printf("  share under five minutes: %.0f%% (paper: \"most ... under five minutes\")\n",
				episodes.ShareUnder(5*time.Minute)*100)
		case "statefulfix":
			statefulFix()
		case "flapstorm":
			flapstorm()
		case "damping":
			dampingClaim()
		case "routeserver":
			routeServerClaim()
		case "synchrony":
			synchronyClaim(cfg.Seed)
		case "igploop":
			igpLoopClaim()
		case "csu":
			csuClaim()
		case "aggregation":
			aggregationClaim()
		case "livesim":
			liveSimClaim()
		case "exchanges":
			exchangesClaim(*seed)
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}

	if *id != "all" {
		run(*id)
		return
	}
	for _, name := range []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "volume", "usagecorr", "persistence", "statefulfix", "flapstorm",
		"damping", "routeserver", "synchrony", "igploop", "csu", "aggregation",
		"livesim", "exchanges",
	} {
		fmt.Printf("================ %s ================\n", name)
		run(name)
		fmt.Println()
	}
}

// volumeClaim quantifies §4's headline: daily updates vastly exceed the
// table size, and pathological duplicates dominate.
func volumeClaim(p *instability.Pipeline, gen *workload.Generator) {
	dates := p.Acc.Dates()
	var best, typical int
	for i, d := range dates {
		n := p.Acc.Days[d].Total()
		if n > best {
			best = n
		}
		if i == len(dates)/2 {
			typical = n
		}
	}
	peak := 0
	for _, d := range dates {
		if ps := p.Acc.Days[d].PeakSecond; ps > peak {
			peak = ps
		}
	}
	routes := gen.Routes()
	tot := p.Acc.TotalCounts()
	instab := tot[core.AADiff] + tot[core.WADiff] + tot[core.WADup]
	path := tot[core.AADup] + tot[core.WWDup]
	fmt.Println("§4 volume claims:")
	fmt.Printf("  routing table:        %s routes\n", report.FormatCount(routes))
	fmt.Printf("  typical day:          %s updates (%.0fx the table)\n", report.FormatCount(typical), float64(typical)/float64(routes))
	fmt.Printf("  worst day:            %s updates (%.0fx the table)\n", report.FormatCount(best), float64(best)/float64(routes))
	fmt.Printf("  peak burst:           %d updates in one second\n", peak)
	fmt.Printf("  pathological share:   %.0f%% of classified updates\n", 100*float64(path)/float64(path+instab))
}

// usageCorrClaim quantifies §5.1: "the measured routing instability
// corresponds so closely to the trends seen in Internet bandwidth usage".
func usageCorrClaim(p *instability.Pipeline, cfg workload.Config) {
	_, hourly := p.Acc.HourlySeries()
	var instByHour, usageByHour [24]float64
	for i, v := range hourly {
		instByHour[i%24] += v
	}
	for s, v := range cfg.DiurnalProfile() {
		usageByHour[s/6] += v
	}
	var xs, ys []float64
	for h := 0; h < 24; h++ {
		xs = append(xs, instByHour[h])
		ys = append(ys, usageByHour[h])
	}
	r := analysis.Correlation(xs, ys)
	fmt.Println("§5.1 instability vs network usage:")
	fmt.Printf("  Pearson correlation of hourly instability with the usage curve: %+.2f\n", r)
}

// statefulFix reruns the exchange-point episode with the stateless vendor
// before and after the software update (§4.2's 2M -> 1905 withdrawals).
func statefulFix() {
	episode := func(stateless bool) int {
		sim := events.New(7)
		cls := core.NewClassifier()
		ww := 0
		pt := exchange.New(sim, exchange.Config{Name: "AADS", Sink: func(r collector.Record) {
			if cls.Classify(r).Class == core.WWDup {
				ww++
			}
		}})
		ispX := router.New(sim, router.Config{AS: 690, ID: 1, Session: session.Config{MRAI: time.Second, CompareLastSent: true}})
		ispY := router.New(sim, router.Config{AS: 701, ID: 2, Session: session.Config{MRAI: time.Second, Stateless: stateless, CompareLastSent: !stateless}})
		pt.AttachClient(ispX, 5*time.Millisecond)
		pt.AttachClient(ispY, 5*time.Millisecond)
		sim.RunFor(10 * time.Second)
		for i := 0; i < 50; i++ {
			prefix := netaddr.MustPrefix(netaddr.Addr(0xc02a0000+uint32(i)<<8), 24)
			ispX.Originate(prefix, bgp.OriginIGP)
			sim.RunFor(time.Minute)
			ispX.WithdrawOrigin(prefix)
			sim.RunFor(time.Minute)
		}
		return ww
	}
	before := episode(true)
	after := episode(false)
	fmt.Println("§4.2 stateless-vendor fix (WWDups at the route server across 50 flaps):")
	fmt.Printf("  stateless implementation: %d\n", before)
	fmt.Printf("  after stateful update:    %d\n", after)
}

// flapstorm summarizes the §3 storm mechanism.
func flapstorm() {
	sim := events.New(42)
	hub := router.New(sim, router.Config{
		AS: 200, ID: 2, Arch: router.RouteCache,
		CPU: router.CPUModel{
			PerUpdate: 8 * time.Millisecond, PerCacheMiss: time.Millisecond,
			CrashBacklog: 45 * time.Second, RebootTime: 2 * time.Minute,
		},
		Session: session.Config{MRAI: 0, HoldTime: 30 * time.Second},
	})
	feeder := router.New(sim, router.Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0, Stateless: true}})
	bystander := router.New(sim, router.Config{AS: 300, ID: 3, Session: session.Config{MRAI: 0, HoldTime: 30 * time.Second}})
	router.Connect(sim, feeder, hub, time.Millisecond)
	hb := router.Connect(sim, hub, bystander, time.Millisecond)
	sim.RunFor(5 * time.Second)
	var i int
	blaster := sim.Every(4*time.Millisecond, func() {
		p := netaddr.MustPrefix(netaddr.Addr(0x0a000000+uint32(i/2%2000)*256), 24)
		if i%2 == 0 {
			feeder.Originate(p, bgp.OriginIGP)
		} else {
			feeder.WithdrawOrigin(p)
		}
		i++
	})
	sim.RunFor(5 * time.Minute)
	blaster.Stop()
	sim.RunFor(15 * time.Minute)
	fmt.Println("§3 route flap storm (250 updates/s through a route-caching hub):")
	fmt.Printf("  hub crashes:                 %d\n", hub.Metrics().Crashes)
	fmt.Printf("  bystander session drops:     %d (collateral damage)\n", bystander.Metrics().SessionDrops)
	fmt.Printf("  hub cache invalidations:     %s\n", report.FormatCount(hub.Metrics().CacheInvalidations))
	fmt.Printf("  recovered after storm:       %v\n", hb.Established())
}

// dampingClaim runs the damping ablation.
func dampingClaim() {
	run := func(withDamping bool) (processed, suppressed int, delayed time.Duration) {
		sim := events.New(11)
		cfg := router.Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0}}
		if withDamping {
			d := damping.DefaultConfig()
			cfg.Damping = &d
		}
		r := router.New(sim, cfg)
		feeder := router.New(sim, router.Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
		router.Connect(sim, feeder, r, time.Millisecond)
		sim.RunFor(5 * time.Second)
		prefix := netaddr.MustParsePrefix("192.42.113.0/24")
		for i := 0; i < 10; i++ {
			feeder.Originate(prefix, bgp.OriginIGP)
			sim.RunFor(30 * time.Second)
			feeder.WithdrawOrigin(prefix)
			sim.RunFor(30 * time.Second)
		}
		feeder.Originate(prefix, bgp.OriginIGP)
		sim.RunFor(time.Second)
		waited := time.Duration(0)
		for waited < 3*time.Hour {
			if _, _, ok := r.RIB().Best(prefix); ok {
				break
			}
			sim.RunFor(time.Minute)
			waited += time.Minute
		}
		return r.Metrics().UpdatesProcessed, r.Metrics().DampedUpdates, waited
	}
	p1, s1, d1 := run(false)
	p2, s2, d2 := run(true)
	fmt.Println("§3 route flap damping ablation (10 one-minute flaps, then a legitimate announce):")
	fmt.Printf("  without damping: %d processed, %d suppressed, reachable after %v\n", p1, s1, d1)
	fmt.Printf("  with damping:    %d processed, %d suppressed, reachable after %v (the artificial delay)\n", p2, s2, d2)
}

// routeServerClaim prints the O(N^2) vs O(N) peering session counts.
func routeServerClaim() {
	fmt.Println("§3 route server session complexity:")
	fmt.Printf("  %-8s %-12s %s\n", "peers", "full mesh", "route server")
	for _, n := range []int{10, 30, 60, 100} {
		fmt.Printf("  %-8d %-12d %d\n", n, exchange.BilateralSessions(n), exchange.RouteServerSessions(n))
	}
}

// igpLoopClaim demonstrates the §4.2 IGP interaction hypothesis: mutual
// redistribution between two routing domains creates an undetectable ghost
// route unless tag filtering is configured.
func igpLoopClaim() {
	run := func(filtered bool) (reachedB, ghost bool) {
		sim := events.New(21)
		a := igp.NewNetwork(sim)
		b := igp.NewNetwork(sim)
		a0 := a.AddNode(10)
		ax := a.AddNode(1)
		ay := a.AddNode(2)
		a.Link(10, 1, 10)
		a.Link(1, 2, 10)
		a.Link(10, 2, 10)
		bx := b.AddNode(1)
		by := b.AddNode(2)
		b.AddNode(10)
		b.Link(1, 10, 10)
		b.Link(10, 2, 10)
		b.Link(1, 2, 10)
		const tagAB, tagBA = 100, 200
		drs := []*igp.DomainRedistributor{
			igp.NewDomainRedistributor(sim, ax, bx, tagAB, 0),
			igp.NewDomainRedistributor(sim, ay, by, tagAB, 20*time.Second),
			igp.NewDomainRedistributor(sim, bx, ax, tagBA, 10*time.Second),
			igp.NewDomainRedistributor(sim, by, ay, tagBA, 25*time.Second),
		}
		if filtered {
			for _, d := range drs {
				d.FilterTags[tagAB] = true
				d.FilterTags[tagBA] = true
			}
		}
		p := netaddr.MustParsePrefix("192.42.113.0/24")
		a0.AnnounceExternal(p, igp.External{Metric: 1})
		sim.RunFor(3 * time.Minute)
		_, reachedB = b.Node(10).Route(p)
		a0.WithdrawExternal(p)
		sim.RunFor(30 * time.Minute)
		_, ghost = b.Node(10).Route(p)
		return reachedB, ghost
	}
	r1, g1 := run(false)
	r2, g2 := run(true)
	fmt.Println("§4.2 IGP mutual-redistribution loop (route tags are the fix):")
	fmt.Printf("  without tag filtering: propagated=%v, ghost persists 30 minutes after withdrawal=%v\n", r1, g1)
	fmt.Printf("  with tag filtering:    propagated=%v, ghost persists=%v\n", r2, g2)
}

// csuClaim demonstrates the CSU clock-drift hypothesis: a misconfigured pair
// beats at SlipBudget/drift and turns a customer circuit into a metronome of
// withdrawals.
func csuClaim() {
	cfg := router.DefaultCSU()
	fmt.Println("§4.2 CSU clock drift (misconfigured clock sources on a leased line):")
	fmt.Printf("  drift %.0f ppm, slip budget %v -> carrier loss every %v\n",
		cfg.DriftPPM, cfg.SlipBudget, cfg.Period())
	sim := events.New(43)
	cust := router.New(sim, router.Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0, ConnectRetry: 5 * time.Second}})
	border := router.New(sim, router.Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0, ConnectRetry: 5 * time.Second}})
	up := router.New(sim, router.Config{AS: 300, ID: 3, Session: session.Config{MRAI: 0}})
	custLink := router.Connect(sim, cust, border, time.Millisecond)
	router.Connect(sim, border, up, time.Millisecond)
	sim.RunFor(5 * time.Second)
	cust.Originate(netaddr.MustParsePrefix("192.42.113.0/24"), bgp.OriginIGP)
	sim.RunFor(5 * time.Second)
	csu := router.AttachCSU(sim, custLink, router.CSUConfig{DriftPPM: 2, SlipBudget: 120 * time.Microsecond, Resync: time.Second})
	sim.RunFor(10 * time.Minute)
	s := up.Session(200, 2)
	fmt.Printf("  10 simulated minutes at a 60s beat: %d carrier losses, upstream saw %d withdrawals, %d announcements\n",
		csu.Slips, s.Stats().WdReceived, s.Stats().AnnReceived)
}

// exchangesClaim checks §5's representativeness statement: the class mix
// measured at Mae-East matches the other exchange points.
func exchangesClaim(seed int64) {
	fmt.Println("§5 cross-exchange representativeness (two simulated weeks each):")
	fmt.Printf("  %-9s %8s %8s %8s %8s %8s  %s\n", "exchange", "AADiff", "WADiff", "WADup", "AADup", "WWDup", "pathological share")
	for _, name := range topology.ExchangeNames {
		cfg := workload.SmallConfig()
		cfg.Days = 14
		cfg.Seed = seed
		cfg.Exchange = name
		p := instability.NewPipeline()
		if _, _, err := instability.RunScenario(cfg, p); err != nil {
			log.Fatal(err)
		}
		tot := p.Acc.TotalCounts()
		instab := tot[core.AADiff] + tot[core.WADiff] + tot[core.WADup]
		path := tot[core.AADup] + tot[core.WWDup]
		fmt.Printf("  %-9s %8d %8d %8d %8d %8d  %.0f%%\n", name,
			tot[core.AADiff], tot[core.WADiff], tot[core.WADup], tot[core.AADup], tot[core.WWDup],
			100*float64(path)/float64(path+instab))
	}
}

// liveSimClaim cross-validates the statistical workload generator against a
// fully live network: every AS instantiated as a real simulated router with
// its vendor profile, CSU oscillators on half the customer circuits, and the
// route server collecting through actual protocol execution. The classified
// shape must match the campaign's.
func liveSimClaim() {
	cls := core.NewClassifier()
	acc := core.NewAccumulator()
	s, err := netsim.Build(netsim.Config{
		Topology: topology.Config{
			Backbones: 4, Regionals: 4, Customers: 24,
			PrefixesPerCustomer: 2, MultihomedFrac: 0.3,
			StatelessFrac: 0.4, UnjitteredFrac: 0.5, SwampFrac: 0.3,
		},
		Seed:    1996,
		CSUFrac: 0.5,
		Sink:    func(r collector.Record) { acc.Add(cls.Classify(r)) },
	})
	if err != nil {
		log.Fatal(err)
	}
	s.Settle(30*time.Second, 5*time.Minute)
	s.Run(time.Hour)
	tot := acc.TotalCounts()
	var on3060, totalIA int
	for _, day := range acc.Days {
		for c := 0; c < core.NumClasses; c++ {
			for b, v := range day.InterArrival[c] {
				totalIA += v
				if b == 2 || b == 3 {
					on3060 += v
				}
			}
		}
	}
	fmt.Println("live network cross-validation (every AS a real simulated router, 1h):")
	fmt.Printf("  routers: %d, links: %d (established %d), route server table: %d prefixes\n",
		len(s.Routers), len(s.Links), s.EstablishedLinks(), s.Point.RouteServer().RIB().Len())
	fmt.Printf("  classified: AADiff %d, WADiff %d, WADup %d, AADup %d, WWDup %d, Other %d\n",
		tot[core.AADiff], tot[core.WADiff], tot[core.WADup], tot[core.AADup], tot[core.WWDup], tot[core.Other])
	if totalIA > 0 {
		fmt.Printf("  30s+1m inter-arrival share: %.0f%% (CSU beats + 30s MRAI timers)\n",
			100*float64(on3060)/float64(totalIA))
	}
}

// aggregationClaim quantifies §4.1: a flapping customer circuit is invisible
// upstream when its prefix lives inside a provider aggregate.
func aggregationClaim() {
	run := func(aggregate bool) int {
		sim := events.New(51)
		provider := router.New(sim, router.Config{AS: 200, ID: 2, Session: session.Config{MRAI: 0, CompareLastSent: true}})
		if aggregate {
			provider.ConfigureAggregate(router.AggregateConfig{
				Supernet:           netaddr.MustParsePrefix("198.108.60.0/22"),
				SuppressComponents: true,
			})
		}
		flappy := router.New(sim, router.Config{AS: 100, ID: 1, Session: session.Config{MRAI: 0}})
		steady := router.New(sim, router.Config{AS: 110, ID: 11, Session: session.Config{MRAI: 0}})
		up := router.New(sim, router.Config{AS: 300, ID: 3, Session: session.Config{MRAI: 0}})
		router.Connect(sim, flappy, provider, time.Millisecond)
		router.Connect(sim, steady, provider, time.Millisecond)
		router.Connect(sim, provider, up, time.Millisecond)
		sim.RunFor(5 * time.Second)
		steady.Originate(netaddr.MustParsePrefix("198.108.61.0/24"), bgp.OriginIGP)
		sim.RunFor(5 * time.Second)
		base := up.Session(200, 2).Stats().UpdatesReceived
		for i := 0; i < 20; i++ {
			flappy.Originate(netaddr.MustParsePrefix("198.108.60.0/24"), bgp.OriginIGP)
			sim.RunFor(10 * time.Second)
			flappy.WithdrawOrigin(netaddr.MustParsePrefix("198.108.60.0/24"))
			sim.RunFor(10 * time.Second)
		}
		return up.Session(200, 2).Stats().UpdatesReceived - base
	}
	leaked := run(false)
	hidden := run(true)
	fmt.Println("§4.1 aggregation ablation (20 customer flaps behind a provider):")
	fmt.Printf("  unaggregated: upstream heard %d updates\n", leaked)
	fmt.Printf("  aggregated:   upstream heard %d updates (instability scoped to the AS)\n", hidden)
}

// synchronyClaim runs the Floyd-Jacobson model with and without jitter.
func synchronyClaim(seed int64) {
	cfg := synchrony.DefaultConfig()
	unjittered := synchrony.Run(cfg, rand.New(rand.NewSource(seed)))
	cfg.JitterFrac = 0.25
	jittered := synchrony.Run(cfg, rand.New(rand.NewSource(seed)))
	fmt.Println("§4.2 timer self-synchronization (Floyd-Jacobson periodic message model):")
	fmt.Printf("  unjittered 30s timers: coherence %.2f, synchronized at period %d, cluster share %.0f%%\n",
		unjittered.PhaseCoherence, unjittered.SyncStep, unjittered.MaxClusterShare*100)
	fmt.Printf("  25%% jitter:            coherence %.2f, synchronized: %v\n",
		jittered.PhaseCoherence, jittered.SyncStep >= 0)
}
