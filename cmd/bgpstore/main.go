// Bgpstore manages an irtlstore: an embedded, time-partitioned BGP update
// store with indexed queries (see internal/store). It turns flat collector
// logs into a directory of sealed, indexed segments and answers sliced
// questions — by time window, peer AS, origin AS, prefix, update type —
// without rescanning nine months of gzip.
//
// Usage:
//
//	bgpstore ingest  -store db maeeast.irtl.gz riped.mrt.gz ...
//	bgpstore query   -store db -from 1996-05-01 -to 1996-05-08 -origin 690 -type W
//	bgpstore query   -store db -peer 701 -out slice.irtl.gz
//	bgpstore compact -store db
//	bgpstore stats   -store db
//
// Query prints matching records in bgpdump-style lines (or writes a native
// log with -out, which bgpanalyze and bgpreplay consume); -scanstats shows
// how much of the store the index skipped.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"instability/internal/collector"
	"instability/internal/faults"
	"instability/internal/obs"
	"instability/internal/store"
)

// serveMetrics starts the exposition server when addr is nonempty; pprof
// and the store's live ingest/query metrics become scrapeable for the life
// of the command.
func serveMetrics(addr string) {
	if addr == "" {
		return
	}
	msrv, err := obs.Serve(addr, obs.Default())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("metrics on http://%s/metrics", msrv.Addr())
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpstore: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ingest":
		cmdIngest(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "compact":
		cmdCompact(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bgpstore {ingest|query|compact|stats} -store DIR [flags] [files]")
	os.Exit(2)
}

func openStore(dir string, window time.Duration, autoSeal, sealWorkers int, chaos string, cacheBytes int64, noMmap bool) *store.Store {
	if dir == "" {
		log.Fatal("missing -store")
	}
	opts := store.Options{Window: window, AutoSealRecords: autoSeal, SealWorkers: sealWorkers,
		BlockCacheBytes: cacheBytes, NoMmap: noMmap}
	if chaos != "" {
		plan, err := faults.ParseSpec(chaos)
		if err != nil {
			log.Fatal(err)
		}
		opts.FS = faults.NewInjector(faults.Disk{}, plan)
		log.Printf("chaos: store I/O faulted with %q", chaos)
	}
	s, err := store.Open(dir, opts)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// chaosUsage is the shared help text for the per-command -chaos flag.
const chaosUsage = "inject deterministic store I/O faults, e.g. seed=42,failsync=3,flipreadp=0.01 (see internal/faults)"

// Shared help text for the read-path tuning flags.
const (
	cacheUsage  = "byte budget of the shared decompressed-block cache (0 = off)"
	noMmapUsage = "disable memory-mapped segment reads, forcing the ReadAt path"
)

// Shared help text for the write-path tuning flag.
const sealWorkersUsage = "block encode/compress workers for seals and compactions (1 = serial)"

func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	var (
		dir         = fs.String("store", "", "store directory")
		window      = fs.Duration("window", 24*time.Hour, "segment time-partition width")
		autoSeal    = fs.Int("autoseal", 1<<18, "seal automatically after this many buffered records (0 = at end only)")
		sealWorkers = fs.Int("seal-workers", runtime.GOMAXPROCS(0), sealWorkersUsage)
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /varz, /healthz, /debug/pprof on this address")
		chaos       = fs.String("chaos", "", chaosUsage)
		cacheBytes  = fs.Int64("block-cache-bytes", 32<<20, cacheUsage)
		noMmap      = fs.Bool("no-mmap", false, noMmapUsage)
	)
	fs.Parse(args)
	if fs.NArg() == 0 {
		log.Fatal("ingest: no input files")
	}
	serveMetrics(*metricsAddr)
	s := openStore(*dir, *window, *autoSeal, *sealWorkers, *chaos, *cacheBytes, *noMmap)
	w := s.Writer()
	total := 0
	for _, path := range fs.Args() {
		span := obs.StartSpan("ingest")
		r, _, err := collector.OpenAny(path)
		if err != nil {
			log.Fatal(err)
		}
		n, err := w.AppendAll(r)
		r.Close()
		span.Add(int64(n))
		span.End()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: %d records\n", path, n)
		total += n
	}
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d records into %s\n", total, *dir)
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		dir         = fs.String("store", "", "store directory")
		from        = fs.String("from", "", "start time (inclusive): RFC3339 or YYYY-MM-DD[ HH:MM:SS]")
		to          = fs.String("to", "", "end time (exclusive)")
		peers       = fs.String("peer", "", "comma-separated peer AS list")
		origins     = fs.String("origin", "", "comma-separated origin AS list (announcements only)")
		prefix      = fs.String("prefix", "", "exact prefix (CIDR)")
		types       = fs.String("type", "", "comma-separated record types: A,W,UP,DOWN")
		out         = fs.String("out", "", "write results as a native log instead of printing")
		exchange    = fs.String("exchange", "store", "exchange name for the -out log header")
		countOnly   = fs.Bool("count", false, "print only the match count")
		scanStats   = fs.Bool("scanstats", false, "print index pushdown statistics to stderr")
		explain     = fs.Bool("explain", false, "print the query's EXPLAIN profile to stderr after the scan")
		limit       = fs.Int("n", 0, "stop after this many records (0 = all)")
		parallel    = fs.Int("parallel", runtime.GOMAXPROCS(0), "segment-scan decompression workers (1 = serial scan)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /varz, /healthz, /debug/pprof on this address")
		traceSample = fs.Float64("trace-sample", 0, "trace this query (0 = off, 1 = always); view at -metrics-addr /debug/traces")
		chaos       = fs.String("chaos", "", chaosUsage)
		cacheBytes  = fs.Int64("block-cache-bytes", 32<<20, cacheUsage)
		noMmap      = fs.Bool("no-mmap", false, noMmapUsage)
	)
	fs.Parse(args)
	q, err := store.ParseQuery(*from, *to, *peers, *origins, *prefix, *types)
	if err != nil {
		log.Fatal(err)
	}
	serveMetrics(*metricsAddr)
	ctx := context.Background()
	if *traceSample > 0 {
		obs.EnableTracing(obs.TraceConfig{SampleRate: *traceSample})
		var troot *obs.TraceSpan
		ctx, troot = obs.DefaultTracer().Start(ctx, "bgpstore_query")
		defer troot.Finish()
	}
	s := openStore(*dir, 0, 0, 0, *chaos, *cacheBytes, *noMmap)
	defer s.Close()
	r, err := s.QueryParallelCtx(ctx, q, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	var lw *collector.Writer
	if *out != "" {
		if lw, err = collector.Create(*out, *exchange); err != nil {
			log.Fatal(err)
		}
	}
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		n++
		switch {
		case lw != nil:
			if err := lw.Write(rec); err != nil {
				log.Fatal(err)
			}
		case !*countOnly:
			fmt.Println(rec)
		}
		if *limit > 0 && n >= *limit {
			break
		}
	}
	if lw != nil {
		if err := lw.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", n, *out)
	} else if *countOnly {
		fmt.Println(n)
	}
	if *scanStats {
		st := r.Stats()
		fmt.Fprintf(os.Stderr, "segments %d/%d scanned, blocks %d/%d decompressed, %d records decoded, %d matched\n",
			st.SegmentsScanned, st.SegmentsTotal, st.BlocksScanned, st.BlocksTotal,
			st.RecordsScanned+st.MemRecords, st.RecordsMatched)
		fmt.Fprintf(os.Stderr, "generation %d, segment-set fingerprint %016x\n",
			s.Generation(), s.Stats().Fingerprint)
		if st.BlocksQuarantined > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: %d corrupt blocks quarantined (result is partial)\n", st.BlocksQuarantined)
		}
	}
	if *explain {
		fmt.Fprintln(os.Stderr, r.Explain().String())
	}
}

func cmdCompact(args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("store", "", "store directory")
	sealWorkers := fs.Int("seal-workers", runtime.GOMAXPROCS(0), sealWorkersUsage)
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /varz, /healthz, /debug/pprof on this address")
	chaos := fs.String("chaos", "", chaosUsage)
	noMmap := fs.Bool("no-mmap", false, noMmapUsage)
	fs.Parse(args)
	serveMetrics(*metricsAddr)
	// Compaction streams each input once and bypasses the cache by design.
	s := openStore(*dir, 0, 0, *sealWorkers, *chaos, 0, *noMmap)
	defer s.Close()
	st, err := s.Compact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compacted %d segments into %d (%d inputs merged, %d records rewritten)\n",
		st.SegmentsBefore, st.SegmentsAfter, st.SegmentsMerged, st.RecordsRewritten)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dir := fs.String("store", "", "store directory")
	fs.Parse(args)
	s := openStore(*dir, 0, 0, 0, "", 0, false)
	defer s.Close()
	st := s.Stats()
	fmt.Printf("segments      %d (%d v1 inline, %d v2 dictionary)\n", st.Segments, st.SegmentsV1, st.SegmentsV2)
	fmt.Printf("blocks        %d\n", st.Blocks)
	fmt.Printf("records       %d sealed, %d unsealed\n", st.Records, st.MemRecords)
	fmt.Printf("time windows  %d\n", st.Windows)
	fmt.Printf("disk          %d bytes segments, %d bytes WAL\n", st.DiskBytes, st.WALBytes)
	fmt.Printf("generation    %d\n", st.Generation)
	fmt.Printf("fingerprint   %016x\n", st.Fingerprint)
	fmt.Printf("mmap          %d segments mapped\n", st.MmapSegments)
}
