// Bgpanalyze classifies a collector log and prints the paper's tables and
// figures computed from it — the role the XYZ toolkit played for the
// original study.
//
// Usage:
//
//	bgpanalyze -in maeeast.irtl.gz                 # summary
//	bgpanalyze -in maeeast.irtl.gz -id fig8        # one figure
//	bgpanalyze -in maeeast.irtl.gz -id all
//	bgpanalyze -store db -from 1996-05-01 -to 1996-06-01 -peer 690 -id fig6
//	bgpanalyze -remote localhost:1791 -from 1996-05-01 -to 1996-06-01 -id fig6
//	bgpanalyze -in attack.irtl.gz -detect -truth truth.json -alert-log alerts.log
//
// With -store the input is an irtlstore query: the slice to classify is
// selected by the store's indexes (time window, peer AS, origin AS, prefix)
// instead of rescanning a flat log. With -remote the same query runs against
// a bgpserve instance over the binary record protocol — the records stream
// back in the store's wire codec, so the classification is bit-identical to
// opening the store locally.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"instability"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/detect"
	"instability/internal/intern"
	"instability/internal/obs"
	"instability/internal/report"
	"instability/internal/rib"
	"instability/internal/serve"
	"instability/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpanalyze: ")
	var (
		in          = flag.String("in", "", "input log file")
		storeDir    = flag.String("store", "", "analyze an irtlstore query instead of a log file")
		remote      = flag.String("remote", "", "analyze a query against a bgpserve instance (host:port) instead of a local store")
		token       = flag.String("token", "", "API token for -remote (identifies the tenant for quotas)")
		from        = flag.String("from", "", "store query: start time (inclusive)")
		to          = flag.String("to", "", "store query: end time (exclusive)")
		peers       = flag.String("peer", "", "store query: comma-separated peer AS list")
		origins     = flag.String("origin", "", "store query: comma-separated origin AS list")
		prefix      = flag.String("prefix", "", "store query: exact prefix (CIDR)")
		id          = flag.String("id", "summary", "what to print: summary, table1, fig2..fig10, all")
		day         = flag.String("day", "", "day for table1 (YYYY-MM-DD, default: busiest)")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "classifier shards and store-scan workers (1 = serial)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /varz, /healthz, /debug/pprof on this address")
		traceSample = flag.Float64("trace-sample", 0, "trace this run (0 = off, 1 = always); with -remote the trace ID is shared with the server")
		blockCache  = flag.Int64("block-cache-bytes", 32<<20, "store query: shared decompressed-block cache budget in bytes (0 = off)")
		noMmap      = flag.Bool("no-mmap", false, "store query: disable memory-mapped segment reads")
		detectFlag  = flag.Bool("detect", false, "run the streaming anomaly detector over the classified stream and print its alerts")
		truthFile   = flag.String("truth", "", "ground-truth intervals (JSON, from bgpsim -truth-out) to score -detect alerts against")
		alertLog    = flag.String("alert-log", "", "append -detect alerts to this sidecar log (served by bgpserve /v1/alerts)")
	)
	flag.Parse()
	sources := 0
	for _, set := range []bool{*in != "", *storeDir != "", *remote != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		log.Fatal("need exactly one of -in, -store, or -remote")
	}
	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics", msrv.Addr())
	}

	// With -trace-sample the whole run becomes one trace: the query (local
	// scan or remote fetch) and the classify stage are children of a single
	// root, and with -remote the server's admission/scan/encode spans share
	// the same trace ID.
	ctx := context.Background()
	var troot *obs.TraceSpan
	if *traceSample > 0 {
		obs.EnableTracing(obs.TraceConfig{SampleRate: *traceSample})
		ctx, troot = obs.DefaultTracer().Start(ctx, "bgpanalyze")
		defer troot.Finish()
	}

	var (
		r            collector.RecordReader
		exchangeName string
		source       string
		err          error
	)
	switch {
	case *in != "":
		r, exchangeName, err = collector.OpenAny(*in)
		if err != nil {
			log.Fatal(err)
		}
		source = *in
	case *remote != "":
		c := &serve.Client{Addr: *remote, Token: *token}
		rr, qerr := c.QueryCtx(ctx, serve.QuerySpec{
			From: *from, To: *to, Peer: *peers, Origin: *origins, Prefix: *prefix,
		})
		if qerr != nil {
			log.Fatal(qerr)
		}
		r = rr
		exchangeName = "remote"
		source = *remote
	default:
		q, qerr := store.ParseQuery(*from, *to, *peers, *origins, *prefix, "")
		if qerr != nil {
			log.Fatal(qerr)
		}
		s, serr := store.Open(*storeDir, store.Options{BlockCacheBytes: *blockCache, NoMmap: *noMmap})
		if serr != nil {
			log.Fatal(serr)
		}
		defer s.Close()
		r, err = s.QueryParallelCtx(ctx, q, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		exchangeName = "store"
		source = *storeDir
	}
	defer r.Close()

	// The two pipelines produce identical statistics (the equivalence the
	// parallel package tests under -race); which one runs is purely a matter
	// of how many cores the flag lets us use.
	var (
		acc         *core.Accumulator
		censusByDay map[core.Date]rib.Census
		finalCensus func() rib.Census
		n           int
		err2        error
	)
	var det *detect.Detector
	if *detectFlag {
		det = detect.New(detect.Config{})
	} else if *truthFile != "" || *alertLog != "" {
		log.Fatal("-truth and -alert-log require -detect")
	}
	span, _ := obs.StartSpanCtx(ctx, "classify")
	if *parallel > 1 {
		pp := instability.NewParallelPipeline(instability.ParallelConfig{Shards: *parallel})
		// Live taxonomy counters: merged at each day barrier, so a scrape
		// during a long classify trails the stream by at most one day.
		pp.Acc.Register(obs.Default())
		if det != nil {
			pp.Events = det.Add
			pp.DayEnd = func(d core.Date) { det.Advance(d.Time().AddDate(0, 0, 1)) }
		}
		n, err2 = instability.ClassifyLogParallel(r, pp)
		pp.Close()
		acc, censusByDay, finalCensus = pp.Acc, pp.CensusByDay, pp.Census
	} else {
		p := instability.NewPipeline()
		// Live taxonomy counters: a scrape during a long classify shows the
		// per-class mix as it accumulates.
		p.Acc.Register(obs.Default())
		if det != nil {
			p.Events = det.Add
			p.DayEnd = func(d core.Date) { det.Advance(d.Time().AddDate(0, 0, 1)) }
		}
		n, err2 = instability.ClassifyLog(r, p)
		acc, censusByDay, finalCensus = p.Acc, p.CensusByDay, p.Table.TakeCensus
	}
	if err2 != nil {
		log.Fatal(err2)
	}
	span.Add(int64(n))
	span.End()
	if exchangeName == "" {
		exchangeName = "MRT"
	}
	fmt.Printf("classified %d records from %s (%s)\n", n, source, exchangeName)
	if hits, misses, paths := intern.Stats(); hits+misses > 0 {
		fmt.Printf("attr intern: %.1f%% hit rate (%d lookups, %d unique tuples, %d unique paths)\n",
			100*float64(hits)/float64(hits+misses), hits+misses, misses, paths)
	}
	fmt.Println()

	if det != nil {
		reportAlerts(det.Finish(), *truthFile, *alertLog)
	}

	table1Day := busiestDay(acc)
	if *day != "" {
		var t core.Date
		parsed, err := parseDate(*day)
		if err != nil {
			log.Fatal(err)
		}
		t = parsed
		table1Day = t
	}

	show := func(name string) {
		switch name {
		case "summary":
			printSummary(acc, finalCensus())
		case "table1":
			fmt.Println(report.Table1(acc, table1Day))
		case "fig2":
			fmt.Println(report.Fig2(acc))
		case "fig3":
			fmt.Println(report.Fig3(acc, nil))
		case "fig4":
			dates := acc.Dates()
			if len(dates) > 7 {
				fmt.Println(report.Fig4(acc, dates[len(dates)/2]))
			}
		case "fig5":
			fmt.Println(report.Fig5(acc, 1))
		case "fig6":
			fmt.Println(report.Fig6(acc))
		case "fig7":
			fmt.Println(report.Fig7(acc))
		case "fig8":
			fmt.Println(report.Fig8(acc))
		case "fig9":
			fmt.Println(report.Fig9(acc, nil))
		case "fig10":
			fmt.Println(report.Fig10(censusByDay))
		default:
			log.Fatalf("unknown -id %q", name)
		}
	}
	if *id == "all" {
		for _, name := range []string{"summary", "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
			show(name)
			fmt.Println()
		}
		return
	}
	show(*id)
}

// reportAlerts prints the detector's alert stream and, when asked, appends
// it to a sidecar log (the file bgpserve's /v1/alerts serves) and scores it
// against ground-truth intervals written by bgpsim -truth-out.
func reportAlerts(alerts []detect.Alert, truthFile, alertLog string) {
	fmt.Printf("detector: %d alert episodes\n", len(alerts))
	for _, a := range alerts {
		target := ""
		switch {
		case a.Prefix != "":
			target = fmt.Sprintf(" peer=%d prefix=%s", a.Peer, a.Prefix)
		case a.Peer != 0:
			target = fmt.Sprintf(" peer=%d", a.Peer)
		}
		fmt.Printf("  %-6s %s%s %s .. %s windows=%d records=%d peak=%.1f baseline=%.2f\n",
			a.Channel, a.Class, target,
			a.Start.Format("2006-01-02 15:04"), a.End.Format("2006-01-02 15:04"),
			a.Windows, a.Records, a.Peak, a.Baseline)
	}
	if alertLog != "" {
		l, err := store.OpenSidecarLog(alertLog)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range alerts {
			if err := l.Append(a); err != nil {
				log.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("appended %d alerts to %s\n", len(alerts), alertLog)
	}
	if truthFile != "" {
		data, err := os.ReadFile(truthFile)
		if err != nil {
			log.Fatal(err)
		}
		var truths []detect.Truth
		if err := json.Unmarshal(data, &truths); err != nil {
			log.Fatalf("bad truth file %s: %v", truthFile, err)
		}
		sc := detect.Evaluate(alerts, truths, 15*time.Minute)
		fmt.Println(sc)
	}
	fmt.Println()
}

func printSummary(acc *core.Accumulator, census rib.Census) {
	tot := acc.TotalCounts()
	all := 0
	for _, v := range tot {
		all += v
	}
	fmt.Println("taxonomy breakdown:")
	for _, c := range core.Classes() {
		fmt.Printf("  %-7s %12s (%.1f%%)\n", c, report.FormatCount(tot[c]), 100*float64(tot[c])/float64(all))
	}
	instab := tot[core.AADiff] + tot[core.WADiff] + tot[core.WADup]
	path := tot[core.AADup] + tot[core.WWDup]
	fmt.Printf("instability %s, pathological %s (%.1fx)\n",
		report.FormatCount(instab), report.FormatCount(path), float64(path)/float64(max(instab, 1)))
	fmt.Printf("final table: %d prefixes, %d multihomed (%.0f%%), %d origin ASes, %d unique paths\n",
		census.Prefixes, census.Multihomed, census.MultihomedShare()*100, census.OriginASes, census.UniquePaths)
}

func busiestDay(acc *core.Accumulator) core.Date {
	var best core.Date
	bestN := -1
	for _, d := range acc.Dates() {
		if n := acc.Days[d].Total(); n > bestN {
			best, bestN = d, n
		}
	}
	return best
}

func parseDate(s string) (core.Date, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("bad date %q: %v", s, err)
	}
	return core.DateOf(t), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
