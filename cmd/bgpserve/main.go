// Bgpserve runs the multi-tenant query/serving plane over an irtlstore: one
// long-lived process opens the store once and answers many concurrent reader
// sessions over a single port speaking both HTTP/JSON (dashboards, curl) and
// the binary record protocol (the analysis CLIs via -remote).
//
// Usage:
//
//	bgpserve -store db -addr :1791
//	bgpserve -store db -addr :1791 -max-sessions 64 -cache-bytes 67108864 \
//	         -tenant-quotas 'dashboards=50:100,batch=5:10,*=2:4'
//	curl 'http://localhost:1791/v1/aggregate?kind=classes&from=1996-05-01'
//	bgpanalyze -remote localhost:1791 -from 1996-05-01 -to 1996-05-08
//
// Admission is a bounded worker pool with per-tenant token buckets keyed on
// the API token; requests beyond the queue are shed with 429/BUSY rather
// than queued without bound. Aggregates are cached under the store's
// segment-set generation. SIGINT/SIGTERM drains in-flight requests before
// exit.
package main

import (
	"flag"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"instability/internal/faults"
	"instability/internal/obs"
	"instability/internal/serve"
	"instability/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpserve: ")
	var (
		addr        = flag.String("addr", ":1791", "listen address (HTTP and binary protocol on one port)")
		storeDir    = flag.String("store", "", "store directory to serve")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /varz, /healthz, /debug/pprof on this address")
		maxSessions = flag.Int("max-sessions", 32, "concurrently executing reader sessions (worker pool size)")
		maxQueue    = flag.Int("max-queue", 0, "requests allowed to wait for a session slot (0 = 2*max-sessions)")
		queueWait   = flag.Duration("queue-wait", 2*time.Second, "how long a queued request waits before being shed")
		quotaSpec   = flag.String("tenant-quotas", "", "per-tenant rate quotas, e.g. 'dashboards=50:100,*=5:10' (token=rate:burst per second; * is the default)")
		cacheBytes  = flag.Int64("cache-bytes", 32<<20, "aggregate result-cache budget in bytes (0 = disabled)")
		workers     = flag.Int("workers", 0, "per-query segment-scan workers (0 = GOMAXPROCS)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
		chaos       = flag.String("chaos", "", "inject deterministic store I/O faults, e.g. seed=42,flipreadp=0.01 (see internal/faults)")
		traceSample = flag.Float64("trace-sample", 0.05, "fraction of untraced requests to head-sample into /debug/traces (slow requests are always kept)")
		traceRing   = flag.Int("trace-ring", 256, "completed traces retained for /debug/traces")
		slowQuery   = flag.Duration("slow-query", time.Second, "emit an NDJSON profile line for requests at or over this duration (negative = never)")
		slowLog     = flag.String("slow-query-log", "", "slow-query log file (append; empty = stderr)")
		alertLog    = flag.String("alert-log", "", "detector alert sidecar log to expose on /v1/alerts (written by bgpanalyze -detect -alert-log)")
		blockCache  = flag.Int64("block-cache-bytes", 32<<20, "byte budget of the shared decompressed-block cache (0 = off)")
		noMmap      = flag.Bool("no-mmap", false, "disable memory-mapped segment reads, forcing the ReadAt path")
		sealWorkers = flag.Int("seal-workers", runtime.GOMAXPROCS(0), "block encode/compress workers for store seals and compactions (1 = serial)")
	)
	flag.Parse()
	if *storeDir == "" {
		log.Fatal("missing -store")
	}

	obs.EnableTracing(obs.TraceConfig{
		SampleRate:    *traceSample,
		SlowThreshold: *slowQuery,
		RingSize:      *traceRing,
	})

	var slowW io.Writer
	if *slowLog != "" {
		f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		slowW = f
	}

	if *metricsAddr != "" {
		msrv, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			log.Fatal(err)
		}
		defer msrv.Close()
		log.Printf("metrics on http://%s/metrics", msrv.Addr())
	}

	quotas, def, err := serve.ParseQuotas(*quotaSpec)
	if err != nil {
		log.Fatal(err)
	}

	sopts := store.Options{BlockCacheBytes: *blockCache, NoMmap: *noMmap, SealWorkers: *sealWorkers}
	if *chaos != "" {
		plan, err := faults.ParseSpec(*chaos)
		if err != nil {
			log.Fatal(err)
		}
		sopts.FS = faults.NewInjector(faults.Disk{}, plan)
		log.Printf("chaos: store I/O faulted with %q", *chaos)
	}
	st, err := store.Open(*storeDir, sopts)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := serve.New(serve.Options{
		Store:        st,
		MaxSessions:  *maxSessions,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		Quotas:       quotas,
		DefaultQuota: def,
		CacheBytes:   *cacheBytes,
		Workers:      *workers,
		DrainTimeout: *drain,
		SlowQuery:    *slowQuery,
		SlowQueryLog: slowW,
		AlertLog:     *alertLog,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	gst := st.Stats()
	log.Printf("serving %s on %s (%d segments, %d records, generation %d)",
		*storeDir, ln.Addr(), gst.Segments, gst.Records, gst.Generation)

	// Graceful shutdown: first signal drains, second aborts immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (again to abort)", sig)
		go func() {
			<-sigc
			log.Fatal("second signal: aborting")
		}()
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	}
	srv.Close()
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	log.Print("drained; bye")
}
