// Package instability is a library-scale reproduction of "Internet Routing
// Instability" (Labovitz, Malan, Jahanian; SIGCOMM 1997): the update
// taxonomy (WADiff, AADiff, WADup, AADup, WWDup), a streaming classifier, a
// BGP-4 protocol stack with the 1996-era vendor behaviors that generated the
// pathologies, route-server collectors at simulated exchange points, a
// nine-month workload generator, and the statistical machinery (FFT, Burg
// maximum-entropy spectra, singular-spectrum analysis, inter-arrival
// histograms) behind every figure and table in the paper's evaluation.
//
// This root package wires the pieces into the standard measurement pipeline:
// update records flow through the classifier into per-day statistics while a
// RIB mirror maintains the routing-table census (table size, multihoming).
// Subsystems live in internal packages; everything a downstream user needs
// is re-exported or reachable from here.
//
// Quick start:
//
//	p := instability.NewPipeline()
//	stats, err := instability.RunScenario(workload.SmallConfig(), p)
//	fmt.Println(p.Acc.TotalCounts())
package instability

import (
	"io"
	"time"

	"instability/internal/bgp"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/rib"
	"instability/internal/workload"
)

// Pipeline is the standard analysis chain: classifier, per-day accumulator,
// and a RIB mirror for routing-table censuses.
type Pipeline struct {
	// Classifier holds per-(peer,prefix) tuple history.
	Classifier *core.Classifier
	// Acc aggregates classified events per day.
	Acc *core.Accumulator
	// Table mirrors the collector's routing table for census purposes.
	Table *rib.RIB
	// CensusByDay snapshots the table census at each day end.
	CensusByDay map[core.Date]rib.Census

	// Events, when set, observes every classified event.
	Events func(core.Event)
	// DayEnd, when set, observes every day barrier after the snapshot is
	// taken — the hook point for window-finalizing consumers such as the
	// anomaly detector (detect.Detector.Advance).
	DayEnd func(core.Date)
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline {
	return &Pipeline{
		Classifier:  core.NewClassifier(),
		Acc:         core.NewAccumulator(),
		Table:       rib.New(0),
		CensusByDay: make(map[core.Date]rib.Census),
	}
}

// Feed classifies one record and folds it into the statistics.
func (p *Pipeline) Feed(rec collector.Record) core.Event {
	ev := p.Classifier.Classify(rec)
	p.Acc.Add(ev)
	peer := rib.PeerID{AS: rec.PeerAS, ID: rec.PeerAddr}
	switch rec.Type {
	case collector.Announce:
		p.Table.Update(peer, rec.Prefix, rec.Attrs)
	case collector.Withdraw:
		p.Table.Withdraw(peer, rec.Prefix)
	}
	if p.Events != nil {
		p.Events(ev)
	}
	return ev
}

// EndDay records the end-of-day routing table snapshot for date.
func (p *Pipeline) EndDay(date core.Date) {
	p.Acc.EndDay(p.Classifier, date)
	p.CensusByDay[date] = p.Table.TakeCensus()
	if p.DayEnd != nil {
		p.DayEnd(date)
	}
}

// RunScenario generates the configured workload through the pipeline and
// returns the generator statistics. The pipeline's day snapshots are taken
// automatically.
func RunScenario(cfg workload.Config, p *Pipeline) (workload.Stats, *workload.Generator, error) {
	g, err := workload.New(cfg)
	if err != nil {
		return workload.Stats{}, nil, err
	}
	stats := g.Run(
		func(rec collector.Record) { p.Feed(rec) },
		func(day int, end time.Time) { p.EndDay(core.DateOf(end.Add(-time.Second))) },
	)
	return stats, g, nil
}

// ClassifyLog streams a collector log (native or MRT) through the pipeline,
// taking a day snapshot at each date boundary. It returns the number of
// records read.
func ClassifyLog(r collector.RecordReader, p *Pipeline) (int, error) {
	n := 0
	var cur core.Date
	haveDay := false
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		d := core.DateOf(rec.Time)
		if haveDay && d != cur {
			p.EndDay(cur)
		}
		cur, haveDay = d, true
		p.Feed(rec)
		n++
	}
	if haveDay {
		p.EndDay(cur)
	}
	return n, nil
}

// Re-exported core vocabulary, so downstream users rarely need the internal
// paths.
type (
	// Record is one logged routing update observation.
	Record = collector.Record
	// Class is a taxonomy bucket.
	Class = core.Class
	// Event is a classified record.
	Event = core.Event
	// PrefixAS is the paper's per-route aggregation key.
	PrefixAS = core.PrefixAS
	// PeerKey identifies an exchange peer.
	PeerKey = core.PeerKey
	// Date is a UTC civil date.
	Date = core.Date
	// ASN is a 16-bit autonomous system number.
	ASN = bgp.ASN
)

// Taxonomy constants.
const (
	Other  = core.Other
	AADiff = core.AADiff
	AADup  = core.AADup
	WADiff = core.WADiff
	WADup  = core.WADup
	WWDup  = core.WWDup
)
