package instability_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"instability"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/workload"
)

// equivalenceConfig is the campaign the determinism contract is tested on:
// the full 49-day benchmark campaign with all three scripted incidents (the
// same one bench_test.go measures), shrunk to one small week under -short so
// `go test -short -race` stays quick.
func equivalenceConfig(t *testing.T) workload.Config {
	t.Helper()
	if testing.Short() {
		cfg := workload.SmallConfig()
		cfg.Days = 7
		cfg.Incidents = []workload.Incident{
			{Kind: workload.PathologicalFlood, Day: 2, Magnitude: 0.5},
			{Kind: workload.CollectorOutage, Day: 5, Magnitude: 1},
		}
		return cfg
	}
	cfg := workload.DefaultConfig()
	cfg.Days = 49
	cfg.Incidents = []workload.Incident{
		{Kind: workload.PathologicalFlood, Day: 12, Magnitude: 1},
		{Kind: workload.InfrastructureUpgrade, Day: 25, Days: 5, Magnitude: 1},
		{Kind: workload.CollectorOutage, Day: 40, Magnitude: 1},
	}
	return cfg
}

// TestParallelEquivalence is the determinism contract of the sharded
// pipeline: over the whole campaign, every published statistic — total
// counts, per-day stats (Table 1's inputs), ten-minute series (Fig 2-5),
// per-peer and per-prefix tallies, inter-arrival histograms, peak seconds,
// table censuses — must be identical to the serial pipeline's, for any shard
// count.
func TestParallelEquivalence(t *testing.T) {
	cfg := equivalenceConfig(t)
	serial := instability.NewPipeline()
	if _, _, err := instability.RunScenario(cfg, serial); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			pp := instability.NewParallelPipeline(instability.ParallelConfig{Shards: shards})
			defer pp.Close()
			if _, _, err := instability.RunScenarioParallel(cfg, pp); err != nil {
				t.Fatal(err)
			}
			pp.Sync()
			compareToSerial(t, serial, pp)
		})
	}
}

// TestParallelEquivalenceFeedBatch drives the same comparison through
// FeedBatch with day barriers placed by the feeder, exercising the batched
// entry point with a caller-side buffer size that never divides evenly into
// the pipeline's own batch size.
func TestParallelEquivalenceFeedBatch(t *testing.T) {
	cfg := equivalenceConfig(t)

	serial := instability.NewPipeline()
	if _, _, err := instability.RunScenario(cfg, serial); err != nil {
		t.Fatal(err)
	}

	pp := instability.NewParallelPipeline(instability.ParallelConfig{Shards: 4, BatchSize: 37, Queue: 2})
	defer pp.Close()
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf []collector.Record
	flush := func() {
		pp.FeedBatch(buf)
		buf = buf[:0]
	}
	g.Run(
		func(rec collector.Record) {
			// Copy: the generator reuses the day buffer backing array, and
			// this buffer outlives the callback.
			buf = append(buf, rec)
			if len(buf) >= 100 {
				flush()
			}
		},
		func(day int, end time.Time) {
			flush()
			pp.EndDay(core.DateOf(end.Add(-time.Second)))
		},
	)
	flush()
	pp.Sync()
	compareToSerial(t, serial, pp)
}

func compareToSerial(t *testing.T, serial *instability.Pipeline, pp *instability.ParallelPipeline) {
	t.Helper()
	if got, want := pp.Acc.TotalCounts(), serial.Acc.TotalCounts(); got != want {
		t.Fatalf("TotalCounts: parallel %v, serial %v", got, want)
	}
	if got, want := pp.Acc.Dates(), serial.Acc.Dates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Dates: parallel %v, serial %v", got, want)
	}
	for _, d := range serial.Acc.Dates() {
		ss, ps := serial.Acc.Days[d], pp.Acc.Days[d]
		compareDay(t, d, ss, ps)
	}
	if got, want := pp.CensusByDay, serial.CensusByDay; !reflect.DeepEqual(got, want) {
		t.Fatalf("CensusByDay: parallel %v, serial %v", got, want)
	}
	if got, want := pp.Census(), serial.Table.TakeCensus(); got != want {
		t.Fatalf("final census: parallel %+v, serial %+v", got, want)
	}
	if got, want := pp.TotalActive(), serial.Classifier.TotalActive(); got != want {
		t.Fatalf("TotalActive: parallel %d, serial %d", got, want)
	}
}

// compareDay checks every exported DayStats field. The struct also has
// unexported in-progress burst counters that legitimately differ (the
// parallel feeder tracks bursts outside the accumulator), so the comparison
// is per-field, not DeepEqual of the whole struct.
func compareDay(t *testing.T, d core.Date, ss, ps *core.DayStats) {
	t.Helper()
	if (ss == nil) != (ps == nil) {
		t.Fatalf("day %v: serial nil=%v parallel nil=%v", d, ss == nil, ps == nil)
	}
	if ss == nil {
		return
	}
	if ss.Counts != ps.Counts {
		t.Errorf("day %v Counts: parallel %v, serial %v", d, ps.Counts, ss.Counts)
	}
	if ss.PolicyShifts != ps.PolicyShifts {
		t.Errorf("day %v PolicyShifts: parallel %d, serial %d", d, ps.PolicyShifts, ss.PolicyShifts)
	}
	if ss.TenMinInstability != ps.TenMinInstability {
		t.Errorf("day %v TenMinInstability differs", d)
	}
	if ss.TenMinAll != ps.TenMinAll {
		t.Errorf("day %v TenMinAll differs", d)
	}
	if !reflect.DeepEqual(ss.ByPeer, ps.ByPeer) {
		t.Errorf("day %v ByPeer differs", d)
	}
	if !reflect.DeepEqual(ss.ByPrefixAS, ps.ByPrefixAS) {
		t.Errorf("day %v ByPrefixAS differs", d)
	}
	if ss.InterArrival != ps.InterArrival {
		t.Errorf("day %v InterArrival differs", d)
	}
	if !reflect.DeepEqual(ss.PeerTable, ps.PeerTable) {
		t.Errorf("day %v PeerTable differs: parallel %v, serial %v", d, ps.PeerTable, ss.PeerTable)
	}
	if ss.TotalTable != ps.TotalTable {
		t.Errorf("day %v TotalTable: parallel %d, serial %d", d, ps.TotalTable, ss.TotalTable)
	}
	if ss.PeakSecond != ps.PeakSecond {
		t.Errorf("day %v PeakSecond: parallel %d, serial %d", d, ps.PeakSecond, ss.PeakSecond)
	}
}
