package instability_test

import (
	"reflect"
	"testing"
	"time"

	"instability"
	"instability/internal/core"
	"instability/internal/detect"
	"instability/internal/workload"
)

// attachDetector wires a fresh detector into p's hooks: every classified
// event feeds the detector and every day barrier finalizes its windows.
func attachDetector(p *instability.Pipeline) *detect.Detector {
	det := detect.New(detect.Config{})
	p.Events = det.Add
	p.DayEnd = func(d core.Date) { det.Advance(d.Time().AddDate(0, 0, 1)) }
	return det
}

// runDetection runs cfg through the serial pipeline with a detector
// attached and returns the closed alert stream plus ground truth.
func runDetection(t *testing.T, cfg workload.Config) ([]detect.Alert, []detect.Truth) {
	t.Helper()
	p := instability.NewPipeline()
	det := attachDetector(p)
	_, g, err := instability.RunScenario(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return det.Finish(), g.GroundTruth()
}

// TestGoldenScenarioDetection is the detection quality contract: each
// adversarial scenario, injected as three consecutive daily episodes over
// the small background, must be detected at >= 0.9 precision AND >= 0.9
// recall, across seeds. Detection latency per scenario is reported.
func TestGoldenScenarioDetection(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, kind := range workload.AdversaryScenarios {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for _, seed := range seeds {
				cfg := workload.ScenarioConfig(kind, 3, seed)
				alerts, truths := runDetection(t, cfg)
				sc := detect.Evaluate(alerts, truths, 15*time.Minute)
				for _, s := range sc.Scenarios {
					t.Logf("seed=%d %s: %d/%d episodes detected by %d alerts, detection latency mean=%s max=%s",
						seed, s.Scenario, s.Detected, s.Truths, s.Alerts, s.MeanLatency, s.MaxLatency)
				}
				if sc.Precision >= 0.9 && sc.Recall >= 0.9 {
					continue
				}
				t.Errorf("seed=%d precision=%.3f recall=%.3f, want >= 0.9 on both", seed, sc.Precision, sc.Recall)
				for _, a := range alerts {
					t.Logf("  alert %-6s %s peer=%d prefix=%s %s .. %s windows=%d records=%d peak=%.1f",
						a.Channel, a.Class, a.Peer, a.Prefix,
						a.Start.Format("01-02 15:04"), a.End.Format("01-02 15:04"),
						a.Windows, a.Records, a.Peak)
				}
			}
		})
	}
}

// TestGoldenCombinedCampaign runs all five scenarios on consecutive days
// of one campaign and holds the same quality bar.
func TestGoldenCombinedCampaign(t *testing.T) {
	alerts, truths := runDetection(t, workload.AdversaryConfig(1))
	sc := detect.Evaluate(alerts, truths, 15*time.Minute)
	t.Logf("combined: %s", sc)
	if sc.Precision < 0.9 || sc.Recall < 0.9 {
		t.Errorf("precision=%.3f recall=%.3f, want >= 0.9 on both", sc.Precision, sc.Recall)
	}
	for _, s := range sc.Scenarios {
		if s.Detected < s.Truths {
			t.Errorf("%s: detected %d of %d episodes", s.Scenario, s.Detected, s.Truths)
		}
	}
}

// TestDetectorSerialParallelEquivalence is the detector's determinism
// contract, and — under -race — the hammer on its concurrent Add path: the
// parallel pipeline calls det.Add from every shard goroutine, and the
// alert stream must still be identical to the serial feed's.
func TestDetectorSerialParallelEquivalence(t *testing.T) {
	cfg := workload.AdversaryConfig(2)

	p := instability.NewPipeline()
	serialDet := attachDetector(p)
	if _, _, err := instability.RunScenario(cfg, p); err != nil {
		t.Fatal(err)
	}
	serial := serialDet.Finish()

	for _, shards := range []int{2, 8} {
		pp := instability.NewParallelPipeline(instability.ParallelConfig{Shards: shards})
		parDet := detect.New(detect.Config{})
		pp.Events = parDet.Add
		pp.DayEnd = func(d core.Date) { parDet.Advance(d.Time().AddDate(0, 0, 1)) }
		if _, _, err := instability.RunScenarioParallel(cfg, pp); err != nil {
			t.Fatal(err)
		}
		pp.Close()
		parallel := parDet.Finish()

		if len(serial) != len(parallel) {
			t.Fatalf("shards=%d: serial emitted %d alerts, parallel %d", shards, len(serial), len(parallel))
		}
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("shards=%d alert %d differs:\n  serial   %+v\n  parallel %+v", shards, i, serial[i], parallel[i])
			}
		}
	}
}
