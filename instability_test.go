package instability_test

import (
	"path/filepath"
	"testing"
	"time"

	"instability"
	"instability/internal/collector"
	"instability/internal/core"
	"instability/internal/workload"
)

func TestRunScenarioPipeline(t *testing.T) {
	p := instability.NewPipeline()
	events := 0
	p.Events = func(core.Event) { events++ }
	stats, gen, err := instability.RunScenario(workload.SmallConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 || events != stats.Records {
		t.Fatalf("records %d events %d", stats.Records, events)
	}
	if gen == nil || gen.Topology() == nil {
		t.Fatal("generator not returned")
	}
	if len(p.CensusByDay) != 7 {
		t.Fatalf("censuses %d", len(p.CensusByDay))
	}
	tot := p.Acc.TotalCounts()
	if tot[instability.WWDup] == 0 || tot[instability.WADup] == 0 {
		t.Fatalf("classes missing: %v", tot)
	}
	// The RIB mirror holds the live table.
	if p.Table.Len() == 0 {
		t.Fatal("table mirror empty")
	}
	c := p.Table.TakeCensus()
	if c.Multihomed == 0 {
		t.Fatal("census shows no multihoming")
	}
}

func TestRunScenarioUnknownExchange(t *testing.T) {
	cfg := workload.SmallConfig()
	cfg.Exchange = "nowhere"
	if _, _, err := instability.RunScenario(cfg, instability.NewPipeline()); err == nil {
		t.Fatal("expected error")
	}
}

func TestLogRoundTripThroughPipeline(t *testing.T) {
	// Generate a scenario to a gzip log file, then classify the file; the
	// results must match the direct pipeline exactly.
	cfg := workload.SmallConfig()
	cfg.Days = 3
	dir := t.TempDir()
	path := filepath.Join(dir, "maeeast.irtl.gz")

	w, err := collector.Create(path, cfg.Exchange)
	if err != nil {
		t.Fatal(err)
	}
	direct := instability.NewPipeline()
	g, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(func(rec collector.Record) {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		direct.Feed(rec)
	}, func(day int, end time.Time) {
		direct.EndDay(core.DateOf(end.Add(-time.Second)))
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := collector.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fromLog := instability.NewPipeline()
	n, err := instability.ClassifyLog(r, fromLog)
	if err != nil {
		t.Fatal(err)
	}
	if n != w.Count() {
		t.Fatalf("read %d of %d records", n, w.Count())
	}
	if fromLog.Acc.TotalCounts() != direct.Acc.TotalCounts() {
		t.Fatalf("log pipeline diverges:\n%v\n%v", fromLog.Acc.TotalCounts(), direct.Acc.TotalCounts())
	}
	if len(fromLog.Acc.Dates()) != len(direct.Acc.Dates()) {
		t.Fatal("day counts diverge")
	}
}

func TestTaxonomyReexports(t *testing.T) {
	if instability.AADup.String() != "AADup" || !instability.WWDup.IsPathological() {
		t.Fatal("re-exported taxonomy broken")
	}
	if instability.WADiff.IsPathological() || !instability.WADiff.IsInstability() {
		t.Fatal("predicates broken")
	}
}
